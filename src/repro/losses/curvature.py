"""Curvature (smoothness-constant) estimation.

The step sizes of Algorithms 3 and 5 are ``eta_0 = eta / gamma`` with
``gamma`` the (restricted) smoothness constant — ``lambda_max(E x x^T)``
for the linear model, ``gamma_r`` for a general RSS loss.  The paper
assumes ``gamma`` is known; in practice the experiments estimate it from
data.  This module provides both routes:

* :func:`gram_top_eigenvalue` — exact ``lambda_max(X^T X / n)`` via a
  dense eigensolve (cheap for ``d`` up to a few thousand);
* :func:`estimate_curvature` — loss-agnostic power iteration on
  finite-difference Hessian-vector products, usable for any
  :class:`~repro.losses.base.Loss`.

Note: estimating ``gamma`` from the private dataset is, strictly, a
(data-dependent) hyper-parameter choice outside the DP accounting — the
same liberty the paper's own experiments take.  Callers who need
end-to-end DP should pass a public ``gamma`` (e.g. from a prior dataset
or a moment assumption).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_dataset, check_positive, check_positive_int
from ..rng import SeedLike, ensure_rng
from .base import Loss


def gram_top_eigenvalue(X: np.ndarray, factor: float = 1.0) -> float:
    """``factor * lambda_max(X^T X / n)`` via a dense symmetric eigensolve.

    ``factor`` absorbs loss-specific constants: 2 for the squared loss
    written as ``(margin - y)^2``, 1 for the paper's Algorithm 3 update
    (which drops the 2), 1/4 for the logistic loss.
    """
    X = np.asarray(X, dtype=float)
    check_positive(factor, "factor")
    n = X.shape[0]
    gram = X.T @ X / n
    return factor * float(np.linalg.eigvalsh(gram)[-1])


def estimate_curvature(loss: Loss, X: np.ndarray, y: np.ndarray,
                       w: Optional[np.ndarray] = None,
                       n_power_iterations: int = 15,
                       fd_step: float = 1e-4,
                       max_rows: int = 4000,
                       rng: SeedLike = None) -> float:
    """Estimate the local smoothness constant of ``loss`` at ``w``.

    Runs power iteration on the Hessian of the empirical risk, with
    Hessian-vector products approximated by central finite differences
    of the mean gradient:

    .. math:: H v \\approx \\frac{g(w + h v) - g(w - h v)}{2 h}.

    Parameters
    ----------
    w:
        Point of linearisation; defaults to the origin.
    max_rows:
        Rows are subsampled beyond this count — the top eigenvalue of a
        mean Hessian concentrates quickly.

    Returns
    -------
    float
        A (slightly inflated, see below) top-eigenvalue estimate — the
        returned value is multiplied by 1.05 so step sizes derived from
        it err on the stable side.
    """
    X, y = check_dataset(X, y)
    check_positive_int(n_power_iterations, "n_power_iterations")
    check_positive(fd_step, "fd_step")
    rng = ensure_rng(rng)
    n, d = X.shape
    if n > max_rows:
        idx = rng.choice(n, size=max_rows, replace=False)
        X, y = X[idx], y[idx]
    point = np.zeros(d) if w is None else np.asarray(w, dtype=float)

    v = rng.normal(size=d)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    for _ in range(n_power_iterations):
        g_plus = loss.gradient(point + fd_step * v, X, y)
        g_minus = loss.gradient(point - fd_step * v, X, y)
        hv = (g_plus - g_minus) / (2.0 * fd_step)
        norm = float(np.linalg.norm(hv))
        if norm < 1e-15:
            break
        eigenvalue = norm
        v = hv / norm
    return max(eigenvalue, 1e-12) * 1.05
