"""Squared loss — the LASSO / linear-regression loss of the paper.

``ell(w, (x, y)) = (<x, w> - y)^2`` with gradient ``2 x (<x, w> - y)``.
The population risk is ``lambda_max(E[x x^T])``-smooth (Corollary 1).
"""

from __future__ import annotations

import numpy as np

from .base import MarginLoss


class SquaredLoss(MarginLoss):
    """``(margin - y)^2``; the loss of Algorithms 2 and 3 and Corollary 1."""

    name = "squared"

    def link(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        residual = np.asarray(z, dtype=float) - np.asarray(y, dtype=float)
        return residual**2

    def link_derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        residual = np.asarray(z, dtype=float) - np.asarray(y, dtype=float)
        return 2.0 * residual

    def smoothness(self, X: np.ndarray) -> float:
        """Empirical smoothness constant ``2 * lambda_max(X^T X / n)``.

        (The paper's convention absorbs the factor 2 into
        ``lambda_max(E x x^T)`` because it writes the loss without the
        ``1/2``; we report the honest Hessian norm.)
        """
        X = np.asarray(X, dtype=float)
        second_moment = X.T @ X / X.shape[0]
        return 2.0 * float(np.linalg.eigvalsh(second_moment)[-1])

    def curvature_range(self, X: np.ndarray) -> tuple[float, float]:
        """``(mu, gamma)`` — smallest/largest eigenvalues of ``2 X^T X / n``.

        Algorithms 3 and 5 use the condition number ``gamma/mu`` in their
        schedules; for the well-specified linear model these are the
        restricted strong convexity/smoothness constants.
        """
        X = np.asarray(X, dtype=float)
        eigenvalues = np.linalg.eigvalsh(2.0 * X.T @ X / X.shape[0])
        return float(eigenvalues[0]), float(eigenvalues[-1])


from ..registry import LOSSES

LOSSES.register("squared", SquaredLoss)
