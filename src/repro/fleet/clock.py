"""Clocks the fleet schedules against: real monotonic time or virtual.

Every time-dependent decision in :mod:`repro.fleet` — lease deadlines,
heartbeat intervals, backoff delays, worker respawns — reads one
:class:`Clock`.  Production backends use :class:`MonotonicClock`
(``time.monotonic``); the in-process simulation and every fleet test
use :class:`ManualClock`, whose time only moves when the coordinator
advances it.  That substitution is what makes the fault-injection
harness deterministic *and* fast: a "60 second" lease timeout expires
in microseconds of wall time, on an exactly reproducible tick.

``ManualClock.sleep`` advances virtual time instead of blocking, so
test code written against the real clock (``clock.sleep(0.005)``) runs
at full speed unchanged — the test-suite hygiene rule is to route every
would-be ``time.sleep`` through a clock.
"""

from __future__ import annotations

import threading
import time


class MonotonicClock:
    """The real deal: ``time.monotonic`` now, ``time.sleep`` sleeps."""

    def now(self) -> float:
        """Seconds on the process-wide monotonic clock."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        time.sleep(seconds)


class ManualClock:
    """Virtual time under test control: only :meth:`advance` moves it.

    Thread-safe so racing test threads may share one instance; in the
    deterministic fleet simulation a single coordinator thread owns it.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """The current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move virtual time forward; returns the new time.

        Time is monotonic by contract — a negative step is a test bug
        and raises rather than silently rewinding lease deadlines.
        """
        if seconds < 0:
            raise ValueError(f"cannot rewind a ManualClock by {seconds}")
        with self._lock:
            self._now += float(seconds)
            return self._now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` without blocking."""
        self.advance(seconds)
