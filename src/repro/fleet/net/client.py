"""``SocketBroker`` — the broker method contract over a TCP connection.

A drop-in for :class:`~repro.fleet.broker.InProcessBroker`: same
methods, same signatures, same return shapes, same exceptions — which
is exactly what lets the unchanged
:class:`~repro.fleet.executor.FleetExecutor` drive a *networked* broker
through its ``broker_factory`` hook, and what lets the broker contract
tests run verbatim against the socket.

The client is thread-safe (one lock around each request/response
exchange) so a worker's heartbeat thread can share its compute loop's
connection.  A broken connection is retried transparently with a fresh
socket: every operation is safe to resend, because the broker protocol
itself absorbs redelivery — ``enqueue`` is idempotent by key,
``complete`` by construction (a resent completion is counted as a
duplicate and ignored), and ``heartbeat``/``fail``/``expire`` converge.

Reconnection runs under the fleet's seeded
:class:`~repro.fleet.backoff.BackoffPolicy` with an overall wall-clock
deadline (``reconnect_timeout``), not a fixed retry count: a broker
that is SIGKILLed and restarted from its journal within the window is
indistinguishable from a slow network — the client reconnects, resends,
and the run resumes.  Only after the deadline does a
:class:`ConnectionError` surface.  :attr:`SocketBroker.reconnects`
counts successful re-connections for the stats surfaces.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from ..backoff import BackoffPolicy
from ..broker import DeadLetter, Lease
from . import protocol


def _backoff_to_args(backoff: Optional[BackoffPolicy]
                     ) -> Optional[Dict[str, object]]:
    """A backoff policy as plain ``reset`` parameters."""
    if backoff is None:
        return None
    return {"base": backoff.base, "factor": backoff.factor,
            "cap": backoff.cap, "jitter": backoff.jitter,
            "seed": backoff.seed}


class SocketBroker:
    """A remote broker client satisfying the in-process method contract.

    ``reset=True`` (the coordinator's mode) installs a fresh broker on
    the server configured with this client's ``lease_timeout`` /
    ``max_attempts`` / ``backoff``, so one run's counters and dead
    letters never bleed into the next.  The server refuses a reset that
    would discard an in-flight run (live leases outstanding) with
    :class:`~repro.fleet.broker.BrokerBusyError`, re-raised here;
    ``force_reset=True`` overrides.  Workers connect with the defaults
    and simply adopt whatever policy the server reports via ``ping``.
    """

    def __init__(self, address: Union[str, Tuple[str, int]], *,
                 lease_timeout: Optional[float] = None,
                 max_attempts: Optional[int] = None,
                 backoff: Optional[BackoffPolicy] = None,
                 reset: bool = False, force_reset: bool = False,
                 timeout: float = 30.0,
                 reconnect: Optional[BackoffPolicy] = None,
                 reconnect_timeout: float = 30.0):
        if isinstance(address, str):
            address = protocol.parse_address(address)
        if reconnect_timeout <= 0:
            raise ValueError(f"reconnect_timeout must be > 0, "
                             f"got {reconnect_timeout}")
        self.address = address
        self.timeout = float(timeout)
        self.reconnect = (reconnect if reconnect is not None
                          else BackoffPolicy(base=0.05, factor=2.0,
                                             cap=1.0, jitter=0.1))
        self.reconnect_timeout = float(reconnect_timeout)
        #: Successful re-connections after the first (stats surface it).
        self.reconnects = 0
        self._connected_once = False
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._wire = None
        if reset:
            self.call("reset", lease_timeout=lease_timeout,
                      max_attempts=max_attempts,
                      backoff=_backoff_to_args(backoff),
                      force=True if force_reset else None)
        info = self.call("ping")
        if info["protocol"] != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"broker speaks protocol {info['protocol']}, "
                f"client speaks {protocol.PROTOCOL_VERSION}")
        self.lease_timeout: float = info["lease_timeout"]
        self.max_attempts: int = info["max_attempts"]

    # -- connection plumbing -------------------------------------------------

    def _connect(self) -> None:
        """(Re)open the TCP connection and its buffered file wrapper."""
        self._disconnect()
        self._sock = socket.create_connection(self.address,
                                              timeout=self.timeout)
        self._wire = self._sock.makefile("rwb")
        if self._connected_once:
            self.reconnects += 1
        self._connected_once = True

    def _disconnect(self) -> None:
        """Drop the current connection, tolerating a half-dead socket."""
        for closeable in (self._wire, self._sock):
            if closeable is not None:
                try:
                    closeable.close()
                except OSError:
                    pass
        self._wire = None
        self._sock = None

    def close(self) -> None:
        """Close the connection; the client can reconnect on next use."""
        with self._lock:
            self._disconnect()

    def __enter__(self) -> "SocketBroker":
        """Context-manager entry: the connected client."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def call(self, op: str, **args: object) -> object:
        """One request/response exchange, reconnect-retried on I/O loss.

        Retrying a possibly-delivered request is safe: the broker
        protocol absorbs every redelivery (idempotent enqueue/complete,
        convergent heartbeat/fail/expire), which is the same property
        that makes real at-least-once transports usable behind it.
        Retries run under the seeded :attr:`reconnect` backoff until
        :attr:`reconnect_timeout` wall-clock seconds have passed, then
        raise :class:`ConnectionError` — long enough to ride out a
        broker restarting from its journal.
        """
        payload = {"op": op, "args": {k: v for k, v in args.items()
                                      if v is not None}}
        with self._lock:
            deadline = time.monotonic() + self.reconnect_timeout
            attempt = 0
            while True:
                try:
                    if self._wire is None:
                        self._connect()
                    protocol.write_frame(self._wire, payload)
                    response = protocol.read_frame(self._wire)
                    if response is None:
                        raise ConnectionError("broker closed the connection")
                    break
                except (OSError, ConnectionError) as exc:
                    self._disconnect()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ConnectionError(
                            f"broker at {self.address[0]}:{self.address[1]} "
                            f"unreachable for {self.reconnect_timeout:.1f}s "
                            f"({attempt + 1} attempts): {exc}")
                    # Cap the exponent: the jittered delay caps anyway,
                    # and float ** overflows around 2**1024.
                    delay = self.reconnect.delay(op, min(attempt, 60))
                    time.sleep(min(delay, remaining))
                    attempt += 1
        if response.get("ok"):
            return response.get("result")
        protocol.raise_remote(response.get("kind", "ProtocolError"),
                              response.get("error", "unknown remote error"))

    # -- the broker method contract ------------------------------------------

    def enqueue(self, key: str, payload: object = None) -> bool:
        """Mirror :meth:`InProcessBroker.enqueue` (payload pickled)."""
        return self.call("enqueue", key=key,
                         payload=protocol.encode_payload(payload))

    def lease(self, now: float) -> Optional[Lease]:
        """Mirror :meth:`InProcessBroker.lease`."""
        wire_form = self.call("lease", now=now)
        return None if wire_form is None else protocol.lease_from_wire(
            wire_form)

    def duplicate_lease(self, key: str, now: float) -> Optional[Lease]:
        """Mirror :meth:`InProcessBroker.duplicate_lease`."""
        wire_form = self.call("duplicate_lease", key=key, now=now)
        return None if wire_form is None else protocol.lease_from_wire(
            wire_form)

    def heartbeat(self, lease_id: int, now: float) -> bool:
        """Mirror :meth:`InProcessBroker.heartbeat`."""
        return self.call("heartbeat", lease_id=lease_id, now=now)

    def complete(self, lease_id: int, now: float,
                 values: Optional[List[float]] = None,
                 elapsed: Optional[float] = None) -> str:
        """Mirror :meth:`InProcessBroker.complete` (values as JSON floats)."""
        args: Dict[str, object] = {"lease_id": lease_id, "now": now}
        if values is not None:
            args["values"] = [float(v) for v in values]
            args["elapsed"] = elapsed
        return self.call("complete", **args)

    def fail(self, lease_id: int, now: float, reason: str = "failed") -> str:
        """Mirror :meth:`InProcessBroker.fail`."""
        return self.call("fail", lease_id=lease_id, now=now, reason=reason)

    def expire(self, now: float) -> List[int]:
        """Mirror :meth:`InProcessBroker.expire`."""
        return self.call("expire", now=now)

    def state(self, key: str) -> str:
        """Mirror :meth:`InProcessBroker.state`."""
        return self.call("state", key=key)

    def result(self, key: str
               ) -> Optional[Tuple[List[float], Optional[float]]]:
        """Mirror :meth:`InProcessBroker.result`."""
        return protocol.result_from_wire(self.call("result", key=key))

    def outstanding(self) -> int:
        """Mirror :meth:`InProcessBroker.outstanding`."""
        return self.call("outstanding")

    def next_eligible(self) -> Optional[float]:
        """Mirror :meth:`InProcessBroker.next_eligible`."""
        return self.call("next_eligible")

    @property
    def counters(self) -> Dict[str, int]:
        """Mirror :attr:`InProcessBroker.counters` (queried per access)."""
        return self.call("counters")

    @property
    def dead_letters(self) -> List[DeadLetter]:
        """Mirror :attr:`InProcessBroker.dead_letters` (payload-less)."""
        return [protocol.letter_from_wire(wire_form)
                for wire_form in self.call("dead_letters")]
