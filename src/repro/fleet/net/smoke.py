"""Networked-fleet smoke: ``PYTHONPATH=src python -m repro.fleet.net.smoke``.

The acceptance gate for the socket tier, with *real* processes — no
threads standing in for workers, no simulated clock:

* a broker subprocess (``python -m repro broker --port 0``);
* two worker subprocesses (``python -m repro fleet-worker``), the first
  scheduled to die mid-lease (``os._exit``) on the first attempt of the
  first baseline cell, the survivor scheduled to drop one completion —
  both faults forced at exact ``DIGEST:ATTEMPT`` coordinates read from
  the committed baseline record;
* a coordinator subprocess (``python -m repro run --executor fleet
  --broker``) that must reproduce the committed baseline's ``run_id``
  bit-for-bit despite the chaos, with ``repro diff --against-catalog``
  exiting 0 as the verdict.

Two further scenarios pin the worker-cache eviction policy under real
processes: an unpinned LRU cache bounded at ``--cache-max-cells 3``
ends the run holding at most three cells, while the same bound with
``--baselines`` pinning keeps every baseline cell on disk.

The broker-crash scenario is the recovery gate: a *journalled* broker
(``--journal``) is SIGKILLed mid-run — queue populated, leases live,
completions already dropped — and restarted on the same port from its
write-ahead journal.  The coordinator and worker ride out the downtime
by reconnecting, the replayed broker resumes the run exactly where it
died, and the record must still carry the committed ``run_id`` with
``repro diff --against-catalog`` exit 0.  The restarted broker is then
SIGTERMed and must exit 0 (clean shutdown, journal flushed).

The CI ``fleet-net`` job runs this from the repo root and fails on any
assertion; it exits 0 printing ``[fleet-net] ok``.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .worker import KILL_EXIT_STATUS

#: The bench every scenario runs: the cheapest baselined catalog entry
#: (one panel, five cells at laptop scale, committed run_id).
_BENCH = "ablation_truncation_threshold"
_BASELINE = Path("benchmarks/baselines") / f"{_BENCH}.json"
_STEM = "ablation_threshold"


def _spawn(args: Sequence[str], **kwargs) -> subprocess.Popen:
    """One repro subprocess with stdout captured as text."""
    return subprocess.Popen([sys.executable, "-m", "repro", *args],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, **kwargs)


def _await_broker(broker: subprocess.Popen) -> str:
    """The address the broker subprocess printed at startup."""
    line = broker.stdout.readline()
    marker = "listening on "
    if marker not in line:
        raise AssertionError(f"unexpected broker banner: {line!r}")
    return line.split(marker, 1)[1].split()[0]


def _await_exit(process: subprocess.Popen, timeout: float = 60.0) -> int:
    """The process's exit status, with its output echoed on timeout."""
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        raise AssertionError(
            f"subprocess did not exit within {timeout}s: "
            f"{process.args}\n{process.stdout.read()}")


def _reap(workers: List[subprocess.Popen]) -> None:
    """Terminate any still-polling worker subprocesses."""
    for worker in workers:
        if worker.poll() is None:
            worker.terminate()
    for worker in workers:
        if worker.poll() is None:
            worker.wait(timeout=10.0)


def _journal_ops(journal: Path) -> Dict[str, int]:
    """Count the intact records per op in a (possibly live) journal."""
    counts: Dict[str, int] = {}
    if not journal.exists():
        return counts
    for line in journal.read_bytes().splitlines():
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue  # a torn tail mid-write; recovery drops it too
        if isinstance(record, dict) and "op" in record:
            counts[record["op"]] = counts.get(record["op"], 0) + 1
    return counts


def _await_journal(journal: Path, wanted: Dict[str, int],
                   timeout: float = 60.0) -> Dict[str, int]:
    """Poll until the journal holds at least ``wanted`` records per op."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        counts = _journal_ops(journal)
        if all(counts.get(op, 0) >= n for op, n in wanted.items()):
            return counts
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {wanted}; "
                         f"last saw {_journal_ops(journal)}")


def _cells_on_disk(cache_dir: Path) -> List[str]:
    """Every cell digest currently stored under a worker cache."""
    return sorted(path.stem for path in cache_dir.rglob("*.json"))


def _run_coordinator(address: str, results_dir: Path) -> dict:
    """One catalog bench through the networked fleet; the run record."""
    run = _spawn(["run", _BENCH, "--executor", "fleet",
                  "--broker", address, "--results-dir", str(results_dir)])
    status = _await_exit(run, timeout=120.0)
    output = run.stdout.read()
    assert status == 0, f"coordinator failed ({status}):\n{output}"
    return json.loads((results_dir / f"{_STEM}.json").read_text())


def _assert_diff_clean(results_dir: Path) -> None:
    """``repro diff --against-catalog`` must exit 0 on the fresh record."""
    diff = _spawn(["diff", str(results_dir / f"{_STEM}.json"),
                   "--against-catalog", _BENCH])
    status = _await_exit(diff)
    output = diff.stdout.read()
    assert status == 0, f"repro diff exited {status}:\n{output}"


def _scenario_chaos(address: str, scratch: Path, digests: List[str],
                    run_id: str) -> None:
    """Kill one worker mid-lease, drop one completion, demand run_id parity.

    The doomed worker starts alone so it necessarily leases the first
    queued cell (lease order is queue order) and dies on it for real —
    ``os._exit`` mid-lease, exit status :data:`KILL_EXIT_STATUS`.  The
    survivor starts only after that death, inherits the retry, and
    additionally loses one completion message of its own; every fault
    is repaired by lease expiry + requeue, and the record must still
    carry the committed ``run_id``.
    """
    results_dir = scratch / "chaos-results"
    doomed = _spawn(["fleet-worker", "--broker", address, "--poll", "0.05",
                     "--kill", f"{digests[0]}:0"])
    coordinator = _spawn(["run", _BENCH, "--executor", "fleet",
                          "--broker", address,
                          "--results-dir", str(results_dir)])
    survivor: Optional[subprocess.Popen] = None
    try:
        assert _await_exit(doomed, timeout=90.0) == KILL_EXIT_STATUS, \
            "the doomed worker did not die with the kill status"
        survivor = _spawn(["fleet-worker", "--broker", address,
                           "--poll", "0.05", "--drop", f"{digests[1]}:0"])
        status = _await_exit(coordinator, timeout=120.0)
        output = coordinator.stdout.read()
        assert status == 0, f"coordinator failed ({status}):\n{output}"
    finally:
        _reap([worker for worker in (doomed, survivor, coordinator)
               if worker is not None])
    record = json.loads((results_dir / f"{_STEM}.json").read_text())
    assert record["run_id"] == run_id, (record["run_id"], run_id)
    counters = record["fleet"]["counters"]
    assert counters["expired"] >= 2, counters    # the kill and the drop
    assert counters["retried"] >= 2, counters
    assert counters["dead"] == 0, counters
    _assert_diff_clean(results_dir)
    print(f"[fleet-net] chaos run reproduced run_id {run_id} "
          f"(expired={counters['expired']} retried={counters['retried']}); "
          f"diff clean")


def _scenario_eviction(address: str, scratch: Path,
                       digests: List[str]) -> None:
    """A bounded unpinned worker cache ends the run within its bound."""
    cache_dir = scratch / "lru-cells"
    worker = _spawn(["fleet-worker", "--broker", address, "--poll", "0.05",
                     "--cache", str(cache_dir), "--cache-max-cells", "3"])
    try:
        record = _run_coordinator(address, scratch / "lru-results")
    finally:
        _reap([worker])
    assert record["run_id"], record
    kept = _cells_on_disk(cache_dir)
    assert 0 < len(kept) <= 3, kept
    assert set(kept) <= set(digests), (kept, digests)
    print(f"[fleet-net] LRU bound held: {len(kept)}/{len(digests)} "
          f"cells on disk (max 3)")


def _scenario_pins(address: str, scratch: Path, digests: List[str]) -> None:
    """Baseline pins exempt every baseline cell from the same bound."""
    cache_dir = scratch / "pinned-cells"
    worker = _spawn(["fleet-worker", "--broker", address, "--poll", "0.05",
                     "--cache", str(cache_dir), "--cache-max-cells", "3",
                     "--baselines", str(_BASELINE.parent)])
    try:
        _run_coordinator(address, scratch / "pinned-results")
    finally:
        _reap([worker])
    kept = _cells_on_disk(cache_dir)
    assert set(digests) <= set(kept), (kept, digests)
    print(f"[fleet-net] baseline pins survived the bound: "
          f"{len(digests)} pinned cells kept")


def _scenario_broker_crash(scratch: Path, digests: List[str],
                           run_id: str) -> None:
    """SIGKILL a journalled broker mid-run; restart it; demand parity.

    The worker drops every cell's first-attempt completion, so by the
    time the broker dies the journal holds enqueues and dangling leases
    that only retries can settle — state a memory-only broker would
    lose unrecoverably.  The restarted broker replays the journal on
    the same port; the coordinator and worker, which have been
    reconnecting under backoff the whole time, resume against the
    rebuilt state, and the run must still reproduce the committed
    ``run_id``.  Finally the broker gets SIGTERM and must exit 0: the
    clean-shutdown path flushes and closes the journal.
    """
    journal = scratch / "broker.wal"
    results_dir = scratch / "crash-results"
    broker = _spawn(["broker", "--port", "0", "--lease-timeout", "3",
                     "--journal", str(journal)])
    address = _await_broker(broker)
    port = address.rsplit(":", 1)[1]
    drops = [flag for digest in digests
             for flag in ("--drop", f"{digest}:0")]
    worker = _spawn(["fleet-worker", "--broker", address,
                     "--poll", "0.05", *drops])
    coordinator = _spawn(["run", _BENCH, "--executor", "fleet",
                          "--broker", address,
                          "--results-dir", str(results_dir)])
    restarted: Optional[subprocess.Popen] = None
    try:
        try:
            # Wait for real in-flight state: the full queue plus at
            # least one live lease — then kill without ceremony.
            _await_journal(journal, {"enqueue": len(digests), "lease": 1})
            broker.kill()
            broker.wait(timeout=10.0)
            restarted = _spawn(["broker", "--port", port,
                                "--lease-timeout", "3",
                                "--journal", str(journal)])
            assert _await_broker(restarted) == address
            status = _await_exit(coordinator, timeout=180.0)
            output = coordinator.stdout.read()
            assert status == 0, f"coordinator failed ({status}):\n{output}"
        finally:
            _reap([broker, worker, coordinator])
        record = json.loads((results_dir / f"{_STEM}.json").read_text())
        assert record["run_id"] == run_id, (record["run_id"], run_id)
        counters = record["fleet"]["counters"]
        assert counters["replayed"] > 0, counters
        assert counters["retried"] >= len(digests), counters
        assert counters["dead"] == 0, counters
        _assert_diff_clean(results_dir)
        # The clean-shutdown satellite: SIGTERM -> flush, close, exit 0.
        restarted.send_signal(signal.SIGTERM)
        assert _await_exit(restarted, timeout=10.0) == 0, \
            "SIGTERM did not shut the journalled broker down cleanly"
        assert _journal_ops(journal), "journal vanished on clean shutdown"
    finally:
        if restarted is not None:
            _reap([restarted])
    print(f"[fleet-net] broker SIGKILL + journal replay reproduced "
          f"run_id {run_id} (replayed={counters['replayed']} "
          f"retried={counters['retried']}); SIGTERM exit 0; diff clean")


def main() -> int:
    """Run every networked-fleet scenario against one broker subprocess."""
    baseline = json.loads(_BASELINE.read_text())
    digests = [cell["digest"] for cell in baseline["panels"][0]["cells"]]
    broker = _spawn(["broker", "--port", "0", "--lease-timeout", "3"])
    try:
        address = _await_broker(broker)
        print(f"[fleet-net] broker subprocess on {address}")
        with tempfile.TemporaryDirectory() as tmp:
            scratch = Path(tmp)
            _scenario_chaos(address, scratch, digests, baseline["run_id"])
            _scenario_eviction(address, scratch, digests)
            _scenario_pins(address, scratch, digests)
            _scenario_broker_crash(scratch, digests, baseline["run_id"])
    finally:
        broker.terminate()
        assert broker.wait(timeout=10.0) == 0, \
            "SIGTERM did not shut the shared broker down cleanly"
    print("[fleet-net] ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - the CI fleet-net job
    sys.exit(main())
