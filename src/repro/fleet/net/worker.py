"""``python -m repro fleet-worker`` — a real leased worker process.

The worker loop is the production twin of the simulated
:class:`~repro.fleet.executor._Worker`: lease a digest-keyed cell from
the socket broker, heartbeat on the wall clock while computing, execute
through the *unchanged* engine job path
(:func:`~repro.evaluation.engine._execute_payload` — the same function
every local executor calls), and complete back with the trial values.
Because each :class:`~repro.evaluation.TrialJob` carries its own seed
material, a cell computed on any worker on any machine is bit-identical
to a serial run of the same grid.

Workers may hold a local :class:`~repro.evaluation.ResultCache`: a
leased cell already present locally completes instantly, and a bounded
:class:`~repro.evaluation.EvictionPolicy` keeps long-lived workers from
growing without bound while baseline-pinned digests stay put.

The same :class:`~repro.fleet.faults.FaultSchedule` that drives the
deterministic harness drives *real* chaos here: a scheduled kill is
``os._exit`` mid-lease (the process dies, heartbeats stop, the broker
reaps the lease), a scheduled drop discards the completion message.
CI uses forced ``(digest, attempt)`` coordinates to murder exactly one
worker per run and still demand a bit-identical record.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
from typing import List, Optional, Tuple

from ..backoff import BackoffPolicy
from ..broker import Lease
from ..faults import FaultSchedule
from .client import SocketBroker

#: Exit status of a fault-killed worker, distinguishable from crashes.
KILL_EXIT_STATUS = 17


def _default_kill() -> None:  # pragma: no cover - exercised in subprocesses
    """Die the way a faulted machine dies: no cleanup, no goodbye."""
    os._exit(KILL_EXIT_STATUS)


class FleetWorker:
    """One worker: lease, heartbeat, compute, complete — until idle.

    ``on_kill`` is the fault-injection death hook: the CLI worker uses
    ``os._exit`` (a real process death, mid-lease), while in-process
    tests substitute a soft stop so a "killed" worker thread simply
    abandons its lease — indistinguishable from death as far as the
    broker is concerned.
    """

    def __init__(self, broker: SocketBroker, *, cache=None,
                 faults: Optional[FaultSchedule] = None,
                 poll_interval: float = 0.2,
                 idle_exit: Optional[float] = None,
                 heartbeat_interval: Optional[float] = None,
                 retry: Optional[BackoffPolicy] = None,
                 on_kill=None, label: str = "worker"):
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, "
                             f"got {poll_interval}")
        self.broker = broker
        self.cache = cache
        self.faults = faults if faults is not None else FaultSchedule()
        self.poll_interval = float(poll_interval)
        self.idle_exit = idle_exit
        self.heartbeat_interval = (heartbeat_interval if heartbeat_interval
                                   is not None
                                   else broker.lease_timeout / 3.0)
        #: Backoff between lease polls while the broker is unreachable
        #: — a worker outlives broker downtime instead of exiting.
        self.retry = (retry if retry is not None
                      else BackoffPolicy(base=0.2, factor=2.0, cap=5.0,
                                         jitter=0.1))
        self.on_kill = on_kill if on_kill is not None else _default_kill
        self.label = label
        self.leased = 0
        self.completed = 0
        self.dropped = 0
        self.cache_hits = 0
        self.broker_retries = 0
        self.abandoned = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the run loop to exit after the current lease settles."""
        self._stop.set()

    def run(self) -> int:
        """Lease and compute until stopped or idle; returns cells leased.

        An unreachable broker does not kill the worker: lease polls are
        retried under the seeded :attr:`retry` backoff (counted in
        :attr:`broker_retries`) until the broker returns — restarted
        from its journal, redelivering idempotently — or ``idle_exit``
        elapses.
        """
        idle_since = time.time()
        outages = 0
        while not self._stop.is_set():
            try:
                lease = self.broker.lease(time.time())
            except (ConnectionError, OSError):
                self.broker_retries += 1
                if (self.idle_exit is not None
                        and time.time() - idle_since >= self.idle_exit):
                    break
                self._stop.wait(self.retry.delay("lease", min(outages, 60)))
                outages += 1
                continue
            outages = 0
            if lease is None:
                if (self.idle_exit is not None
                        and time.time() - idle_since >= self.idle_exit):
                    break
                self._stop.wait(self.poll_interval)
                continue
            idle_since = time.time()
            self.leased += 1
            if not self._attempt(lease):
                # The kill hook declined to die for real (a test double):
                # abandon the lease exactly as a dead process would.
                break
        return self.leased

    # -- one attempt ---------------------------------------------------------

    def _attempt(self, lease: Lease) -> bool:
        """Run one leased attempt; ``False`` means "this worker died"."""
        if self.faults.kill_worker(lease.key, lease.attempt):
            print(f"[{self.label}] killed mid-lease "
                  f"cell={lease.key} attempt={lease.attempt}", flush=True)
            self.on_kill()
            return False
        values, elapsed = self._compute(lease)
        if self.faults.drop_completion(lease.key, lease.attempt):
            # The completion message is "lost in transit": never sent.
            # The lease dangles until the broker reaps it and retries.
            self.dropped += 1
            print(f"[{self.label}] dropped completion "
                  f"cell={lease.key} attempt={lease.attempt}", flush=True)
            return True
        try:
            status = self.broker.complete(lease.lease_id, time.time(),
                                          values=values, elapsed=elapsed)
        except (ConnectionError, OSError, KeyError):
            # The broker stayed unreachable past the client's reconnect
            # window (or restarted without this lease — pre-journal or
            # post-reset).  Abandon the attempt: the protocol repairs it
            # like any dropped completion, by expiry and retry.
            self.abandoned += 1
            print(f"[{self.label}] abandoned completion "
                  f"cell={lease.key} attempt={lease.attempt} "
                  f"(broker unreachable)", flush=True)
            return True
        if status in ("completed", "late"):
            self.completed += 1
        return True

    def _compute(self, lease: Lease) -> Tuple[List[float], Optional[float]]:
        """The cell's values: from the local cache, or freshly computed.

        Fresh computation runs under a heartbeat thread beating every
        :attr:`heartbeat_interval` wall-clock seconds, so a slow cell's
        lease stays alive exactly as long as this process does.
        """
        point, job = lease.payload
        if self.cache is not None:
            cached = self.cache.get(job)
            if cached is not None:
                self.cache_hits += 1
                return cached, None
        beat_stop = threading.Event()

        def beat():
            while not beat_stop.wait(self.heartbeat_interval):
                try:
                    if not self.broker.heartbeat(lease.lease_id,
                                                 time.time()):
                        return  # lease gone; the broker moved on
                except (OSError, ConnectionError):
                    return
        beater = threading.Thread(target=beat, daemon=True,
                                  name=f"repro-heartbeat-{lease.lease_id}")
        beater.start()
        try:
            from ...evaluation.engine import _execute_payload
            values, elapsed = _execute_payload((point, job))
        finally:
            beat_stop.set()
            beater.join(timeout=5.0)
        if self.cache is not None:
            self.cache.put(job, values)
        return values, elapsed


# ---------------------------------------------------------------------------
# CLI entry point.
# ---------------------------------------------------------------------------

def _parse_coordinate(text: str) -> Tuple[str, int]:
    """A forced-fault flag value ``DIGEST:ATTEMPT`` as a tuple."""
    digest, sep, attempt = text.rpartition(":")
    if not sep or not digest:
        raise argparse.ArgumentTypeError(
            f"expected DIGEST:ATTEMPT, got {text!r}")
    try:
        return digest, int(attempt)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"attempt must be an integer in {text!r}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet-worker",
        description="Lease and compute fleet cells from a socket broker.")
    parser.add_argument("--broker", metavar="HOST:PORT",
                        default=os.environ.get("REPRO_FLEET_BROKER"),
                        help="broker address (default: $REPRO_FLEET_BROKER)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="local cell cache directory")
    parser.add_argument("--baselines", metavar="DIR", default=None,
                        help="committed baseline records whose cell digests "
                             "are pinned against cache eviction")
    parser.add_argument("--cache-max-cells", type=int, default=None,
                        metavar="N", help="evict the local cache down to N "
                                          "cells (LRU, pins exempt)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="B", help="evict the local cache down to B "
                                          "bytes (LRU, pins exempt)")
    parser.add_argument("--cache-max-age", type=float, default=None,
                        metavar="S", help="evict unpinned cells older than "
                                          "S seconds")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="seconds between lease polls when idle")
    parser.add_argument("--reconnect-timeout", type=float, default=30.0,
                        metavar="S", help="per-call window to ride out an "
                                          "unreachable broker before a poll "
                                          "counts as failed (polls then "
                                          "retry with backoff)")
    parser.add_argument("--idle-exit", type=float, default=None, metavar="S",
                        help="exit after S continuous seconds without work")
    parser.add_argument("--heartbeat-interval", type=float, default=None,
                        metavar="S", help="override the lease_timeout/3 "
                                          "heartbeat cadence")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the probabilistic fault coins")
    parser.add_argument("--kill-rate", type=float, default=0.0,
                        help="probability of dying mid-lease per attempt")
    parser.add_argument("--drop-rate", type=float, default=0.0,
                        help="probability of losing a completion per attempt")
    parser.add_argument("--kill", action="append", default=[],
                        type=_parse_coordinate, metavar="DIGEST:ATTEMPT",
                        help="die mid-lease at this exact coordinate "
                             "(repeatable)")
    parser.add_argument("--drop", action="append", default=[],
                        type=_parse_coordinate, metavar="DIGEST:ATTEMPT",
                        help="lose the completion at this exact coordinate "
                             "(repeatable)")
    return parser


def _graceful_exit(signum, frame):  # pragma: no cover - signal path
    """SIGTERM handler: unwind through the finally blocks and exit 0."""
    raise SystemExit(0)


def main(argv: Optional[List[str]] = None) -> int:
    """Run one worker process against a broker until idle or SIGTERM/Ctrl-C.

    Both signals shut down cleanly: the exit line is printed, the
    broker connection is closed, and the process exits 0.
    """
    args = _build_parser().parse_args(argv)
    if not args.broker:
        print("error: no broker address (pass --broker HOST:PORT or set "
              "REPRO_FLEET_BROKER)", file=sys.stderr)
        return 2
    cache = None
    if args.cache:
        from ...evaluation import EvictionPolicy, ResultCache
        pinned = set()
        if args.baselines:
            from ...results import baseline_digests
            pinned = baseline_digests(args.baselines)
        eviction = None
        if (args.cache_max_cells is not None
                or args.cache_max_bytes is not None
                or args.cache_max_age is not None):
            eviction = EvictionPolicy(max_cells=args.cache_max_cells,
                                      max_bytes=args.cache_max_bytes,
                                      max_age_seconds=args.cache_max_age)
        cache = ResultCache(args.cache, eviction=eviction, pinned=pinned)
    faults = FaultSchedule(seed=args.fault_seed, kill_rate=args.kill_rate,
                           drop_rate=args.drop_rate,
                           kill=frozenset(args.kill),
                           drop=frozenset(args.drop))
    try:
        broker = SocketBroker(args.broker,
                              reconnect_timeout=args.reconnect_timeout)
    except (OSError, ConnectionError, ValueError) as exc:
        print(f"error: cannot reach broker at {args.broker}: {exc}",
              file=sys.stderr)
        return 1
    label = f"worker:{os.getpid()}"
    worker = FleetWorker(broker, cache=cache, faults=faults,
                         poll_interval=args.poll, idle_exit=args.idle_exit,
                         heartbeat_interval=args.heartbeat_interval,
                         label=label)
    print(f"[{label}] polling broker {args.broker} "
          f"lease_timeout={broker.lease_timeout}", flush=True)
    signal.signal(signal.SIGTERM, _graceful_exit)
    try:
        worker.run()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        print(f"[{label}] exiting leased={worker.leased} "
              f"completed={worker.completed} dropped={worker.dropped} "
              f"abandoned={worker.abandoned} "
              f"broker_retries={worker.broker_retries} "
              f"cache_hits={worker.cache_hits}", flush=True)
        broker.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the smoke CI job
    raise SystemExit(main())
