"""The broker wire protocol: JSON lines, one request/response per call.

Every broker method maps to exactly one operation — the wire mirrors
the :class:`~repro.fleet.broker.InProcessBroker` method contract
verbatim, explicit ``now`` included, so the protocol runs against wall
clocks in production and virtual clocks in the deterministic harness
without a special case on either side.

Framing is one JSON object per ``\\n``-terminated line (UTF-8, no
embedded newlines — :func:`json.dumps` guarantees that).  Requests are
``{"op": <name>, "args": {...}}``; responses are either
``{"ok": true, "result": ...}`` or
``{"ok": false, "kind": <exception class>, "error": <message>}``.
The client re-raises ``KeyError``/``ValueError``/``BrokerBusyError``
kinds locally, so a caller cannot tell a remote broker from an
in-process one by its exceptions.

Job payloads — the ``(point, job)`` tuples workers execute — are not
JSON-able, so they travel pickled and base64-wrapped *inside* the JSON.
The broker server treats them as opaque strings (it never unpickles);
only the enqueueing coordinator and the leasing worker — both trusted
repro processes on a private network — ever decode them.  Completed
trial values travel as plain JSON floats: they are inspectable on the
wire and land in cells byte-identical to a local run's.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Dict, List, Optional, Tuple

from ..broker import BrokerBusyError, DeadLetter, Lease

# The canonical payload codecs live with the journal (its records embed
# the same pickled-base64 form the wire uses); re-exported here so the
# wire tier keeps its historical import path.
from ..journal import decode_payload, encode_payload  # noqa: F401

#: Bumped on any incompatible wire change; ``ping`` reports it so a
#: mismatched client can refuse loudly instead of failing strangely.
PROTOCOL_VERSION = 1

#: Exception kinds the client re-raises as their local class; anything
#: else surfaces as a :class:`ProtocolError` carrying the remote text.
_RAISABLE = {"KeyError": KeyError, "ValueError": ValueError,
             "BrokerBusyError": BrokerBusyError}


class ProtocolError(RuntimeError):
    """A malformed frame, an unknown op, or an unmappable remote error."""


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------

def write_frame(wire: BinaryIO, message: Dict[str, object]) -> None:
    """Serialise one message as a JSON line and flush it."""
    wire.write(json.dumps(message, separators=(",", ":"),
                          allow_nan=False).encode("utf-8") + b"\n")
    wire.flush()


def read_frame(wire: BinaryIO) -> Optional[Dict[str, object]]:
    """Read one JSON-line message; ``None`` on a clean EOF."""
    line = wire.readline()
    if not line:
        return None
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, "
                            f"got {type(message).__name__}")
    return message


# ---------------------------------------------------------------------------
# Broker-object wire forms.
# ---------------------------------------------------------------------------

def lease_to_wire(lease: Lease) -> Dict[str, object]:
    """A lease as a JSON-able mapping; the payload stays opaque.

    The server enqueues payloads as the encoded strings the coordinator
    sent, so a lease's payload is already wire-form here.
    """
    return {"lease_id": lease.lease_id, "key": lease.key,
            "attempt": lease.attempt, "deadline": lease.deadline,
            "payload": lease.payload}


def lease_from_wire(wire_form: Dict[str, object]) -> Lease:
    """Rebuild a :class:`~repro.fleet.broker.Lease`, payload unpickled."""
    return Lease(lease_id=wire_form["lease_id"], key=wire_form["key"],
                 attempt=wire_form["attempt"],
                 deadline=wire_form["deadline"],
                 payload=decode_payload(wire_form["payload"]))


def letter_to_wire(letter: DeadLetter) -> Dict[str, object]:
    """A dead letter as a JSON-able mapping (payload omitted).

    The run record keeps a dead letter's key, attempts, and reason; the
    payload never leaves the broker — the coordinator that enqueued it
    still holds the original.
    """
    return {"key": letter.key, "attempts": letter.attempts,
            "reason": letter.reason}


def letter_from_wire(wire_form: Dict[str, object]) -> DeadLetter:
    """Rebuild a payload-less :class:`~repro.fleet.broker.DeadLetter`."""
    return DeadLetter(key=wire_form["key"], attempts=wire_form["attempts"],
                      reason=wire_form["reason"], payload=None)


def result_to_wire(result: Optional[Tuple[List[float], Optional[float]]]
                   ) -> Optional[Dict[str, object]]:
    """A completed ``(values, elapsed)`` pair as plain JSON."""
    if result is None:
        return None
    values, elapsed = result
    return {"values": list(values), "elapsed": elapsed}


def result_from_wire(wire_form: Optional[Dict[str, object]]
                     ) -> Optional[Tuple[List[float], Optional[float]]]:
    """Invert :func:`result_to_wire`."""
    if wire_form is None:
        return None
    return list(wire_form["values"]), wire_form["elapsed"]


# ---------------------------------------------------------------------------
# Error envelopes.
# ---------------------------------------------------------------------------

def error_response(exc: Exception) -> Dict[str, object]:
    """The ``ok: false`` envelope for one server-side exception."""
    return {"ok": False, "kind": type(exc).__name__, "error": str(exc)}


def raise_remote(kind: str, message: str) -> None:
    """Re-raise a remote error as its local class (or ProtocolError)."""
    cls = _RAISABLE.get(kind)
    if cls is KeyError:
        # str(KeyError("x")) round-trips as "'x'" — raising KeyError on
        # the quoted text would double-quote; strip one layer back off.
        raise KeyError(message.strip("'\""))
    if cls is not None:
        raise cls(message)
    raise ProtocolError(f"remote {kind}: {message}")


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``HOST:PORT`` string; raises ``ValueError`` when malformed."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"broker address must be HOST:PORT, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"broker port must be an integer, "
                         f"got {port_text!r} in {address!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"broker port out of range in {address!r}")
    return host, port
