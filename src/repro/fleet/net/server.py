"""``python -m repro broker`` — the shared broker behind a TCP socket.

One :class:`~repro.fleet.broker.InProcessBroker` (which is not
thread-safe by design) guarded by one lock, served to any number of
coordinator and worker connections by a
:class:`socketserver.ThreadingTCPServer`.  Every wire operation maps to
one broker method call under the lock, so the networked fleet inherits
the state machine — and the fault-tolerance proofs pinned by the
in-process tests — unchanged.

The server is deliberately clock-free, exactly like the broker it
wraps: every time-dependent operation carries the caller's ``now``.
Real deployments send ``time.time()`` (the protocol assumes loosely
NTP-synchronised hosts; lease timeouts are seconds, not microseconds),
and the deterministic harness sends virtual instants — the server
cannot tell the difference.

A ``reset`` operation atomically replaces the broker with a fresh one
configured by the caller (lease policy and backoff travel as plain
parameters).  The remote coordinator issues it once per run so counters
and dead letters describe exactly that run; it is the single-tenant
simplification of this tier — two coordinators sharing one broker
server must not reset concurrently.
"""

from __future__ import annotations

import argparse
import socketserver
import threading
from typing import Dict, List, Optional

from ..backoff import BackoffPolicy
from ..broker import InProcessBroker
from . import protocol


class _BrokerHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of request frames, each answered once."""

    def handle(self):
        """Serve frames until the peer disconnects."""
        while True:
            try:
                frame = protocol.read_frame(self.rfile)
            except protocol.ProtocolError as exc:
                protocol.write_frame(self.wfile, protocol.error_response(exc))
                return
            if frame is None:
                return
            try:
                result = self.server.broker_server.dispatch(
                    frame.get("op"), frame.get("args") or {})
                response = {"ok": True, "result": result}
            except Exception as exc:  # noqa: BLE001 - becomes a wire error
                response = protocol.error_response(exc)
            try:
                protocol.write_frame(self.wfile, response)
            except OSError:
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    """Connection-per-thread TCP server with fast restart semantics."""

    allow_reuse_address = True
    daemon_threads = True
    broker_server: "BrokerServer"


class BrokerServer:
    """A lock-protected :class:`InProcessBroker` behind a TCP listener.

    ``port=0`` binds an ephemeral port; read the resolved address back
    from :attr:`host`/:attr:`port` after construction (the smoke
    harness and tests rely on this, exactly like the HTTP tier).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 lease_timeout: float = 5.0, max_attempts: int = 3,
                 backoff: Optional[BackoffPolicy] = None):
        self._lock = threading.Lock()
        self._broker = InProcessBroker(lease_timeout=lease_timeout,
                                       max_attempts=max_attempts,
                                       backoff=backoff)
        self._server = _ThreadingServer((host, port), _BrokerHandler)
        self._server.broker_server = self
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The resolved ``HOST:PORT`` this server listens on."""
        return f"{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "BrokerServer":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-broker", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop accepting connections and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "BrokerServer":
        """Start serving on entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop serving on exit."""
        self.stop()

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, op: str, args: Dict[str, object]) -> object:
        """Execute one wire operation against the broker, under the lock.

        Payloads pass through opaque: the server never unpickles what
        it queues, it only hands the encoded string back inside the
        lease.
        """
        with self._lock:
            broker = self._broker
            if op == "ping":
                return {"protocol": protocol.PROTOCOL_VERSION,
                        "lease_timeout": broker.lease_timeout,
                        "max_attempts": broker.max_attempts}
            if op == "enqueue":
                return broker.enqueue(args["key"], args.get("payload"))
            if op == "lease":
                lease = broker.lease(args["now"])
                return None if lease is None else protocol.lease_to_wire(lease)
            if op == "duplicate_lease":
                lease = broker.duplicate_lease(args["key"], args["now"])
                return None if lease is None else protocol.lease_to_wire(lease)
            if op == "heartbeat":
                return broker.heartbeat(args["lease_id"], args["now"])
            if op == "complete":
                return broker.complete(args["lease_id"], args["now"],
                                       values=args.get("values"),
                                       elapsed=args.get("elapsed"))
            if op == "fail":
                return broker.fail(args["lease_id"], args["now"],
                                   args.get("reason", "failed"))
            if op == "expire":
                return broker.expire(args["now"])
            if op == "state":
                return broker.state(args["key"])
            if op == "result":
                return protocol.result_to_wire(broker.result(args["key"]))
            if op == "outstanding":
                return broker.outstanding()
            if op == "next_eligible":
                return broker.next_eligible()
            if op == "counters":
                return dict(broker.counters)
            if op == "dead_letters":
                return [protocol.letter_to_wire(letter)
                        for letter in broker.dead_letters]
            if op == "reset":
                self._broker = InProcessBroker(
                    lease_timeout=args.get("lease_timeout",
                                           broker.lease_timeout),
                    max_attempts=args.get("max_attempts",
                                          broker.max_attempts),
                    backoff=(BackoffPolicy(**args["backoff"])
                             if args.get("backoff") else broker.backoff))
                return True
            raise protocol.ProtocolError(f"unknown op {op!r}")


def run_broker(host: str = "127.0.0.1", port: int = 8421, *,
               lease_timeout: float = 5.0, max_attempts: int = 3) -> int:
    """Blocking entry point for ``python -m repro broker``."""
    server = BrokerServer(host, port, lease_timeout=lease_timeout,
                          max_attempts=max_attempts)
    print(f"[broker] listening on {server.address} "
          f"lease_timeout={server._broker.lease_timeout} "
          f"max_attempts={server._broker.max_attempts} (Ctrl-C to stop)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("[broker] stopped")
    finally:
        server._server.server_close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone argv entry (``python -m repro.fleet.net.server``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro broker",
        description="Serve a fleet broker over TCP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421,
                        help="port to listen on (0 picks an ephemeral port)")
    parser.add_argument("--lease-timeout", type=float, default=5.0)
    parser.add_argument("--max-attempts", type=int, default=3)
    args = parser.parse_args(argv)
    return run_broker(args.host, args.port, lease_timeout=args.lease_timeout,
                      max_attempts=args.max_attempts)


if __name__ == "__main__":  # pragma: no cover - exercised by the smoke CI job
    raise SystemExit(main())
