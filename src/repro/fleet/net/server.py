"""``python -m repro broker`` — the shared broker behind a TCP socket.

One :class:`~repro.fleet.broker.InProcessBroker` (which is not
thread-safe by design) guarded by one lock, served to any number of
coordinator and worker connections by a
:class:`socketserver.ThreadingTCPServer`.  Every wire operation maps to
one broker method call under the lock, so the networked fleet inherits
the state machine — and the fault-tolerance proofs pinned by the
in-process tests — unchanged.

The server is deliberately clock-free, exactly like the broker it
wraps: every time-dependent operation carries the caller's ``now``.
Real deployments send ``time.time()`` (the protocol assumes loosely
NTP-synchronised hosts; lease timeouts are seconds, not microseconds),
and the deterministic harness sends virtual instants — the server
cannot tell the difference.

A ``reset`` operation atomically replaces the broker with a fresh one
configured by the caller (lease policy and backoff travel as plain
parameters).  The remote coordinator issues it once per run so counters
and dead letters describe exactly that run.  Two coordinators sharing
one broker cannot silently clobber each other: ``reset`` refuses with
:class:`~repro.fleet.broker.BrokerBusyError` while workers hold live
leases (an in-flight run), unless the caller passes ``force=true``.

Crash safety: started with ``--journal PATH`` the broker write-ahead
logs every mutation through :class:`~repro.fleet.journal.Journal`.  On
restart the server replays the journal and resumes the in-flight run —
queue, leases, attempt counts, counters, and dead letters are rebuilt
bit-for-bit, and the coordinator/workers reconnect to a broker that
remembers exactly where they left off.  A ``reset`` compacts the
journal to a single config record, so it never grows across runs.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import socketserver
import threading
from typing import Dict, List, Optional

from ..backoff import BackoffPolicy
from ..broker import BrokerBusyError, InProcessBroker
from ..journal import Journal, replay_journal
from . import protocol


class _BrokerHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of request frames, each answered once."""

    def handle(self):
        """Serve frames until the peer disconnects."""
        while True:
            try:
                frame = protocol.read_frame(self.rfile)
            except protocol.ProtocolError as exc:
                protocol.write_frame(self.wfile, protocol.error_response(exc))
                return
            if frame is None:
                return
            try:
                result = self.server.broker_server.dispatch(
                    frame.get("op"), frame.get("args") or {})
                response = {"ok": True, "result": result}
            except Exception as exc:  # noqa: BLE001 - becomes a wire error
                response = protocol.error_response(exc)
            try:
                protocol.write_frame(self.wfile, response)
            except OSError:
                return


class _ThreadingServer(socketserver.ThreadingTCPServer):
    """Connection-per-thread TCP server with fast restart semantics.

    Live connections are tracked so shutdown can *sever* them: without
    that, daemon handler threads would keep serving a stopped server's
    stale broker — and the in-process restart tests could never model a
    broker death, where every peer sees its connection drop.
    """

    allow_reuse_address = True
    daemon_threads = True
    broker_server: "BrokerServer"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._connections = set()
        self._connections_lock = threading.Lock()

    def process_request(self, request, client_address):
        """Track the connection, then hand off to the handler thread."""
        with self._connections_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        """Untrack a connection its handler finished with."""
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self):
        """Sever every live connection; blocked handlers see EOF."""
        with self._connections_lock:
            connections = list(self._connections)
        for request in connections:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                request.close()
            except OSError:
                pass


class BrokerServer:
    """A lock-protected :class:`InProcessBroker` behind a TCP listener.

    ``port=0`` binds an ephemeral port; read the resolved address back
    from :attr:`host`/:attr:`port` after construction (the smoke
    harness and tests rely on this, exactly like the HTTP tier).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 lease_timeout: float = 5.0, max_attempts: int = 3,
                 backoff: Optional[BackoffPolicy] = None,
                 journal: Optional[str] = None,
                 journal_fsync: str = "always"):
        self._lock = threading.Lock()
        self._journal: Optional[Journal] = None
        broker: Optional[InProcessBroker] = None
        if journal is not None:
            # Opening performs crash recovery (torn tail truncated).  A
            # journal with records is a crashed broker to resume — its
            # config record wins over our constructor arguments; an
            # empty one is a fresh boot that writes its config first.
            self._journal = Journal(journal, fsync=journal_fsync)
            if self._journal.records_on_disk > 0:
                broker = replay_journal(journal)
            else:
                self._journal.reset(lease_timeout=lease_timeout,
                                    max_attempts=max_attempts,
                                    backoff=backoff or BackoffPolicy())
        if broker is None:
            broker = InProcessBroker(lease_timeout=lease_timeout,
                                     max_attempts=max_attempts,
                                     backoff=backoff)
        broker.journal = self._journal
        self._broker = broker
        self._server = _ThreadingServer((host, port), _BrokerHandler)
        self._server.broker_server = self
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The resolved ``HOST:PORT`` this server listens on."""
        return f"{self.host}:{self.port}"

    @property
    def replayed(self) -> int:
        """Journal mutations replayed into the current broker at boot."""
        return self._broker.replayed

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "BrokerServer":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-broker", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop serving, sever live connections, flush and close the log."""
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._close_journal()

    def close(self) -> None:
        """Release sockets and journal without a shutdown handshake.

        For the blocking (CLI) path, where ``serve_forever`` has already
        returned — calling :meth:`stop`'s ``shutdown()`` there would
        deadlock.
        """
        self._server.close_connections()
        self._server.server_close()
        self._close_journal()

    def _close_journal(self) -> None:
        """Close the journal under the dispatch lock (no mid-append races)."""
        if self._journal is not None:
            with self._lock:
                self._journal.close()

    def __enter__(self) -> "BrokerServer":
        """Start serving on entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop serving on exit."""
        self.stop()

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, op: str, args: Dict[str, object]) -> object:
        """Execute one wire operation against the broker, under the lock.

        Payloads pass through opaque: the server never unpickles what
        it queues, it only hands the encoded string back inside the
        lease.
        """
        with self._lock:
            broker = self._broker
            if op == "ping":
                return {"protocol": protocol.PROTOCOL_VERSION,
                        "lease_timeout": broker.lease_timeout,
                        "max_attempts": broker.max_attempts}
            if op == "enqueue":
                return broker.enqueue(args["key"], args.get("payload"))
            if op == "lease":
                lease = broker.lease(args["now"])
                return None if lease is None else protocol.lease_to_wire(lease)
            if op == "duplicate_lease":
                lease = broker.duplicate_lease(args["key"], args["now"])
                return None if lease is None else protocol.lease_to_wire(lease)
            if op == "heartbeat":
                return broker.heartbeat(args["lease_id"], args["now"])
            if op == "complete":
                return broker.complete(args["lease_id"], args["now"],
                                       values=args.get("values"),
                                       elapsed=args.get("elapsed"))
            if op == "fail":
                return broker.fail(args["lease_id"], args["now"],
                                   args.get("reason", "failed"))
            if op == "expire":
                return broker.expire(args["now"])
            if op == "state":
                return broker.state(args["key"])
            if op == "result":
                return protocol.result_to_wire(broker.result(args["key"]))
            if op == "outstanding":
                return broker.outstanding()
            if op == "next_eligible":
                return broker.next_eligible()
            if op == "counters":
                # ``replayed`` rides along without living in the broker's
                # counters dict: recovery provenance for stats surfaces,
                # excluded from the replayed-state-equality contract.
                return {**broker.counters, "replayed": broker.replayed}
            if op == "dead_letters":
                return [protocol.letter_to_wire(letter)
                        for letter in broker.dead_letters]
            if op == "reset":
                held = broker.active_leases()
                if held and not args.get("force"):
                    raise BrokerBusyError(
                        f"reset refused: {held} lease(s) on "
                        f"{broker.outstanding()} unsettled task(s) are "
                        f"outstanding — another coordinator's run is in "
                        f"flight (pass force=true to discard it)")
                lease_timeout = args.get("lease_timeout",
                                         broker.lease_timeout)
                max_attempts = args.get("max_attempts", broker.max_attempts)
                backoff = (BackoffPolicy(**args["backoff"])
                           if args.get("backoff") else broker.backoff)
                if self._journal is not None:
                    # A fresh run needs no history: compact the journal
                    # down to the new broker's config record.
                    self._journal.reset(lease_timeout=lease_timeout,
                                        max_attempts=max_attempts,
                                        backoff=backoff)
                self._broker = InProcessBroker(lease_timeout=lease_timeout,
                                               max_attempts=max_attempts,
                                               backoff=backoff,
                                               journal=self._journal)
                return True
            raise protocol.ProtocolError(f"unknown op {op!r}")


def _graceful_exit(signum, frame):  # pragma: no cover - signal path
    """SIGTERM handler: unwind through the finally blocks and exit 0."""
    raise SystemExit(0)


def run_broker(host: str = "127.0.0.1", port: int = 8421, *,
               lease_timeout: float = 5.0, max_attempts: int = 3,
               journal: Optional[str] = None,
               journal_fsync: str = "always") -> int:
    """Blocking entry point for ``python -m repro broker``.

    Installs a SIGTERM handler so service managers (and the smoke
    harness) get a clean shutdown: the journal is flushed and closed,
    the listening socket released, and the process exits 0.  SIGINT
    (Ctrl-C) takes the same path via ``KeyboardInterrupt``.
    """
    server = BrokerServer(host, port, lease_timeout=lease_timeout,
                          max_attempts=max_attempts, journal=journal,
                          journal_fsync=journal_fsync)
    print(f"[broker] listening on {server.address} "
          f"lease_timeout={server._broker.lease_timeout} "
          f"max_attempts={server._broker.max_attempts} (Ctrl-C to stop)",
          flush=True)
    if journal is not None:
        print(f"[broker] journal {journal} fsync={journal_fsync} "
              f"replayed={server.replayed} "
              f"outstanding={server._broker.outstanding()}", flush=True)
    signal.signal(signal.SIGTERM, _graceful_exit)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("[broker] stopped" + (" (journal flushed)"
                                    if journal is not None else ""),
              flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone argv entry (``python -m repro.fleet.net.server``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro broker",
        description="Serve a fleet broker over TCP, optionally journalled "
                    "for crash recovery.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421,
                        help="port to listen on (0 picks an ephemeral port)")
    parser.add_argument("--lease-timeout", type=float, default=5.0)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--journal", metavar="PATH",
                        default=os.environ.get("REPRO_FLEET_JOURNAL"),
                        help="write-ahead journal file: every broker "
                             "mutation is logged before it is applied, and "
                             "a restart replays the file to resume the "
                             "in-flight run (default: $REPRO_FLEET_JOURNAL)")
    parser.add_argument("--journal-fsync", choices=["always", "never"],
                        default="always",
                        help="fsync after every journal record (survives "
                             "power loss) or leave flushing to the OS "
                             "(faster; survives SIGKILL but not the "
                             "machine)")
    args = parser.parse_args(argv)
    return run_broker(args.host, args.port, lease_timeout=args.lease_timeout,
                      max_attempts=args.max_attempts, journal=args.journal,
                      journal_fsync=args.journal_fsync)


if __name__ == "__main__":  # pragma: no cover - exercised by the smoke CI job
    raise SystemExit(main())
