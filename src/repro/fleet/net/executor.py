"""``RemoteFleetExecutor`` — the coordinator for a networked fleet.

Satisfies the engine's executor protocol exactly like
:class:`~repro.fleet.executor.FleetExecutor` — ``run(payloads)`` →
one ``(values, elapsed, cacheable)`` triple per payload, in payload
order — but instead of simulating workers it enqueues every cell onto
a socket broker and waits for real worker processes
(``python -m repro fleet-worker``) to lease, compute, and complete
them.  Completed values ship back *through the broker* (workers have no
channel to the coordinator), so a cell's bytes take one extra JSON hop
and land bit-identical: trial values are floats end to end.

The coordinator's only active duties are reaping — it calls
``expire(now)`` each poll so a killed worker's lease is noticed even
when no other worker is polling — and settling: once ``outstanding()``
reaches zero it reads every cell's state and values, folds broker
counters into its stats, and assembles results with the same
:func:`~repro.fleet.executor.assemble_results` logic as the simulated
fleet.  Dead-lettered cells obey the same ``dead_letter_policy``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..broker import DEAD, DONE
from ..executor import (
    FleetError,
    FleetOptions,
    FleetStats,
    assemble_results,
)
from .client import SocketBroker


class RemoteFleetExecutor:
    """Drive a grid through a socket broker and real worker processes.

    One instance accumulates :attr:`stats` and :attr:`dead_letters`
    across its ``run`` calls (one per panel), mirroring
    :class:`~repro.fleet.executor.FleetExecutor` so the service tier's
    record/stats plumbing is transport-blind.  Each ``run`` resets the
    remote broker — counters and dead letters describe exactly this
    coordinator's work, and stale state from a previous run can never
    satisfy (or block) this one.
    """

    def __init__(self, options: FleetOptions):
        if not options.broker:
            raise ValueError("RemoteFleetExecutor requires options.broker "
                             "(HOST:PORT)")
        self.options = options
        self.stats = FleetStats()
        self.dead_letters: List[Dict[str, object]] = []

    # -- executor protocol ---------------------------------------------------

    def run(self, payloads: Sequence[Tuple]) -> List[Tuple]:
        """Enqueue every payload, wait for the fleet, settle in order."""
        if not payloads:
            return []
        opts = self.options
        broker = SocketBroker(opts.broker, lease_timeout=opts.lease_timeout,
                              max_attempts=opts.max_attempts,
                              backoff=opts.backoff, reset=True,
                              force_reset=opts.force_reset,
                              reconnect_timeout=opts.reconnect_timeout)
        try:
            return self._run(broker, payloads)
        finally:
            broker.close()

    def _run(self, broker: SocketBroker,
             payloads: Sequence[Tuple]) -> List[Tuple]:
        """One settled run against a freshly-reset broker."""
        opts = self.options
        order: List[str] = []
        jobs: Dict[str, object] = {}
        for point, job in payloads:
            order.append(job.digest)
            if broker.enqueue(job.digest, (point, job)):
                jobs[job.digest] = job
        self._await_settled(broker, len(jobs))
        results: Dict[str, Tuple[List[float], Optional[float]]] = {}
        dead = set()
        for key in jobs:
            state = broker.state(key)
            if state == DONE:
                result = broker.result(key)
                if result is None:
                    raise FleetError(
                        f"cell {key} completed without shipping values; "
                        f"networked workers must complete with values")
                results[key] = result
            elif state == DEAD:
                dead.add(key)
            else:
                raise FleetError(f"cell {key} still {state!r} after the "
                                 f"fleet settled; this is a coordinator bug")
        self._harvest(broker, jobs)
        return assemble_results(order, jobs, results, dead, opts)

    def _await_settled(self, broker: SocketBroker, n_cells: int) -> None:
        """Poll expire/outstanding until every cell is DONE or DEAD.

        The expire sweep is load-bearing: with every worker dead there
        is nobody else to reap dangling leases, and without reaping a
        crashed fleet would hang the run instead of dead-lettering it.

        Broker downtime degrades the loop instead of killing the run:
        the client already rides out :attr:`SocketBroker.reconnect_timeout`
        of unreachability per call, and a :class:`ConnectionError`
        surfacing past that is absorbed here until the run deadline —
        a broker restarted from its journal resumes settlement exactly
        where the last successful poll left it.
        """
        opts = self.options
        deadline = time.time() + opts.run_timeout
        while True:
            now = time.time()
            try:
                broker.expire(now)
                outstanding = broker.outstanding()
            except (ConnectionError, OSError) as exc:
                if time.time() >= deadline:
                    raise FleetError(
                        f"fleet did not settle {n_cells} cells within "
                        f"{opts.run_timeout}s: broker at {opts.broker} "
                        f"unreachable ({exc})")
                time.sleep(opts.poll_interval)
                continue
            if outstanding == 0:
                return
            if now >= deadline:
                raise FleetError(
                    f"fleet did not settle {n_cells} cells within "
                    f"{opts.run_timeout}s (are any workers running against "
                    f"{opts.broker}?)")
            time.sleep(opts.poll_interval)

    def _harvest(self, broker: SocketBroker, jobs: Dict) -> None:
        """Fold one settled remote broker into executor-lifetime stats."""
        for name, value in broker.counters.items():
            setattr(self.stats, name, getattr(self.stats, name) + value)
        self.stats.reconnects += broker.reconnects
        for letter in broker.dead_letters:
            job = jobs[letter.key]
            self.dead_letters.append({
                "digest": letter.key,
                "series_value": job.series_value,
                "sweep_value": job.sweep_value,
                "attempts": letter.attempts,
                "reason": letter.reason,
            })

    # -- record/stats payloads ----------------------------------------------

    def record_payload(self) -> Dict[str, object]:
        """The ``fleet`` key for a run record: counters + dead letters."""
        payload: Dict[str, object] = {"counters": self.stats.as_dict()}
        if self.dead_letters:
            payload["dead_letters"] = [dict(d) for d in self.dead_letters]
        return payload
