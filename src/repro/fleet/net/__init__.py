"""Networked fleet backend: socket broker, real workers, remote executor.

The in-process fleet of :mod:`repro.fleet` simulates workers on a
virtual clock; this package runs the *same* broker state machine behind
a TCP socket so that real worker processes on real machines lease,
compute, and complete digest-keyed cells:

* :mod:`~repro.fleet.net.protocol` — the JSON-lines wire protocol, one
  request/response pair per broker method, explicit ``now`` preserved;
* :class:`~repro.fleet.net.server.BrokerServer` — a threaded TCP server
  over one lock-protected :class:`~repro.fleet.broker.InProcessBroker`
  (``python -m repro broker``);
* :class:`~repro.fleet.net.client.SocketBroker` — a client satisfying
  the broker method contract verbatim, drop-in behind
  :class:`~repro.fleet.executor.FleetExecutor`;
* :mod:`~repro.fleet.net.worker` — the real worker loop
  (``python -m repro fleet-worker``): lease, heartbeat on the wall
  clock, compute through the unchanged engine job path, complete with
  provenance-stamped values;
* :class:`~repro.fleet.net.executor.RemoteFleetExecutor` — the
  coordinator used for ``--executor fleet --broker HOST:PORT``.

Results remain bit-identical to the serial executor because every
:class:`~repro.evaluation.TrialJob` carries its own seed material and
completion is idempotent per digest — the transport cannot perturb the
values it moves.
"""

from .client import SocketBroker
from .executor import RemoteFleetExecutor
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import BrokerServer
from .worker import FleetWorker

__all__ = [
    "BrokerServer",
    "FleetWorker",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteFleetExecutor",
    "SocketBroker",
]
