"""Seeded, deterministic fault schedules for the fleet test harness.

A :class:`FaultSchedule` decides, for every (job digest, attempt)
event, whether the harness injects one of the fleet's four failure
modes:

* **kill** — the worker dies mid-job; its computed values are
  discarded and its lease is left to expire on the clock.
* **drop** — the worker finishes but its completion message is lost;
  the lease expires and the job is retried.
* **duplicate** — the broker delivers the job to a second worker as
  well, so two completions race (the second must be a harmless
  duplicate: cells are digest-addressed).
* **delay** — the worker's heartbeats are suppressed for the attempt,
  so a long job's lease expires mid-compute and a *late* completion
  arrives after the job was already requeued.

Decisions are pure functions of ``(seed, kind, digest, attempt)`` via
:func:`hashlib.blake2b` — never a global RNG — so a schedule replays
identically in any process and under any ``PYTHONHASHSEED``.  On top of
the seeded rates, explicit sets force faults at exact coordinates
(``kill={(digest, 0)}`` kills the first attempt of one known cell), and
``poison={digest}`` kills *every* attempt — the deterministic way to
drive a job into retry exhaustion and the dead-letter path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


def _freeze(value) -> frozenset:
    """Normalise a constructor iterable into a frozenset."""
    return value if isinstance(value, frozenset) else frozenset(value)


@dataclass(frozen=True)
class FaultSchedule:
    """One seeded plan of injected failures, replayable bit-for-bit.

    Rates are probabilities in ``[0, 1]`` applied independently per
    (digest, attempt); the explicit sets force the corresponding fault
    regardless of rate.  The default schedule injects nothing — a
    ``FaultSchedule()`` wrapper is a no-op.
    """

    seed: int = 0
    kill_rate: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: Forced faults at exact ``(digest, attempt)`` coordinates.
    kill: FrozenSet[Tuple[str, int]] = field(default_factory=frozenset)
    drop: FrozenSet[Tuple[str, int]] = field(default_factory=frozenset)
    delay: FrozenSet[Tuple[str, int]] = field(default_factory=frozenset)
    #: Forced duplicate delivery on a digest's first dispatch.
    duplicate: FrozenSet[str] = field(default_factory=frozenset)
    #: Digests killed on *every* attempt — guaranteed dead letters.
    poison: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self):
        """Validate rates and freeze the forced-fault sets."""
        for name in ("kill_rate", "drop_rate", "duplicate_rate",
                     "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("kill", "drop", "delay", "duplicate", "poison"):
            object.__setattr__(self, name, _freeze(getattr(self, name)))

    def _coin(self, kind: str, digest: str, attempt: int,
              rate: float) -> bool:
        """A deterministic biased coin for one fault decision."""
        if rate <= 0.0:
            return False
        payload = f"{self.seed}\x1f{kind}\x1f{digest}\x1f{attempt}"
        word = hashlib.blake2b(payload.encode("utf-8"),
                               digest_size=8).digest()
        return int.from_bytes(word, "little") / 2.0 ** 64 < rate

    def kill_worker(self, digest: str, attempt: int) -> bool:
        """Should the worker computing this attempt die mid-job?"""
        return (digest in self.poison or (digest, attempt) in self.kill
                or self._coin("kill", digest, attempt, self.kill_rate))

    def drop_completion(self, digest: str, attempt: int) -> bool:
        """Should this attempt's completion message be lost?"""
        return ((digest, attempt) in self.drop
                or self._coin("drop", digest, attempt, self.drop_rate))

    def duplicate_delivery(self, digest: str, attempt: int) -> bool:
        """Should the broker dispatch this attempt to two workers?"""
        return ((attempt == 0 and digest in self.duplicate)
                or self._coin("duplicate", digest, attempt,
                              self.duplicate_rate))

    def delay_heartbeat(self, digest: str, attempt: int) -> bool:
        """Should the worker's heartbeats be suppressed this attempt?"""
        return ((digest, attempt) in self.delay
                or self._coin("delay", digest, attempt, self.delay_rate))

    def any_configured(self) -> bool:
        """Whether this schedule can ever inject a fault."""
        return bool(self.kill_rate or self.drop_rate or self.duplicate_rate
                    or self.delay_rate or self.kill or self.drop
                    or self.delay or self.duplicate or self.poison)
