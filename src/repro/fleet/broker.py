"""The work-queue broker: leases, heartbeats, requeues, dead letters.

The broker is the fleet's only shared state.  A coordinator
:meth:`~InProcessBroker.enqueue`\\ s digest-keyed jobs; workers
:meth:`~InProcessBroker.lease` them, :meth:`~InProcessBroker.heartbeat`
while computing, and :meth:`~InProcessBroker.complete` when done.  Time
never flows inside the broker — every method takes an explicit ``now``,
so the same state machine runs against wall clocks in production and a
:class:`~repro.fleet.clock.ManualClock` in the deterministic harness.

Task lifecycle::

    QUEUED --lease--> LEASED --complete--> DONE
      ^                  |
      |   lease expired  |  attempts < max_attempts:
      +------------------+  requeue after backoff.delay(key, attempt)
                         |
                         |  attempts >= max_attempts
                         v
                        DEAD  (a DeadLetter record, surfaced upstream)

Fault tolerance is structural, not aspirational:

* a lease that misses its heartbeats expires and the job is requeued
  with capped exponential backoff (:class:`~repro.fleet.backoff.BackoffPolicy`);
* retries are bounded — exhaustion produces a :class:`DeadLetter`
  instead of an infinite loop;
* completion is idempotent — a second completion of a DONE task (late
  arrival after a lease expiry, or a duplicated delivery) is counted
  and ignored, which is safe *because* tasks are digest-addressed:
  any two completions of one key carry bit-identical values.

Anything satisfying this method contract (enqueue/lease/heartbeat/
complete/fail/expire plus ``outstanding``/``dead_letters``/``counters``)
can replace :class:`InProcessBroker` — a redis- or ray-backed broker
slots in behind the same :class:`~repro.fleet.executor.FleetExecutor`.

Crash safety is opt-in: pass a :class:`~repro.fleet.journal.Journal`
and every successful mutation is appended to the write-ahead log
*before* it is applied, so :func:`~repro.fleet.journal.replay_journal`
rebuilds the exact broker state after a crash.  Only mutations are
journalled — a no-op call (an empty-queue ``lease``, a duplicate
``enqueue``, a dead-lease ``heartbeat``) and a raising call (an
unknown lease id) leave no record, which is what keeps replay from
re-raising or double-counting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import ReproError
from .backoff import BackoffPolicy

#: Task states.
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
DEAD = "dead"


class BrokerBusyError(ReproError, RuntimeError):
    """A ``reset`` was refused: leases are outstanding, so a fresh
    broker would silently discard another coordinator's in-flight run.
    Pass ``force=True`` to discard it anyway."""


@dataclass(frozen=True)
class Lease:
    """One delivery of one task to one worker.

    ``attempt`` is the 0-based retry index of the task at delivery
    time; a duplicated delivery shares its original's attempt number
    (it is the *same* attempt arriving twice, not a retry).
    """

    lease_id: int
    key: str
    attempt: int
    deadline: float
    payload: object = None


@dataclass(frozen=True)
class DeadLetter:
    """A task that exhausted its retries, kept for the run record."""

    key: str
    attempts: int
    reason: str
    payload: object = None


@dataclass
class _Task:
    """Broker-internal per-task state."""

    key: str
    payload: object
    state: str = QUEUED
    attempts: int = 0
    not_before: float = 0.0
    #: Active leases: lease_id -> deadline.
    leases: Dict[int, float] = field(default_factory=dict)
    #: Every lease id ever issued for this task — the set to prune from
    #: the broker's lease index once the task resolves (DONE/DEAD).
    history: List[int] = field(default_factory=list)
    #: The completed values (and compute seconds), when the completing
    #: worker shipped them through the broker (the networked tier does;
    #: the in-process simulation keeps values worker-side).
    result: Optional[Tuple[List[float], Optional[float]]] = None


class InProcessBroker:
    """A single-process, dict-backed broker for the simulated fleet.

    Not thread-safe by design: the deterministic harness drives it from
    one coordinator loop.  (A shared-memory multi-threaded deployment
    would wrap calls in a lock; a networked one would replace the class
    entirely — the protocol, not the implementation, is the contract.)
    """

    def __init__(self, *, lease_timeout: float = 5.0, max_attempts: int = 3,
                 backoff: Optional[BackoffPolicy] = None, journal=None):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        #: Optional write-ahead log (:class:`~repro.fleet.journal.Journal`
        #: or anything with ``append(op, args)``); assignable after
        #: construction, which is how a replayed broker resumes logging.
        self.journal = journal
        #: Mutations re-applied from a journal to build this broker
        #: (set by :func:`~repro.fleet.journal.replay_journal`).  Kept
        #: out of :attr:`counters` deliberately: the counters must
        #: equal the pre-crash broker's for replay to be bit-for-bit.
        self.replayed = 0
        self._tasks: Dict[str, _Task] = {}
        self._order: List[str] = []
        self._lease_owner: Dict[int, str] = {}
        self._next_lease = 0
        self.dead_letters: List[DeadLetter] = []
        self.counters: Dict[str, int] = {
            "enqueued": 0, "leased": 0, "duplicated": 0, "heartbeats": 0,
            "completed": 0, "duplicates": 0, "late": 0, "expired": 0,
            "retried": 0, "dead": 0,
        }

    def _record(self, op: str, **args: object) -> None:
        """Write-ahead hook: log one mutation before applying it."""
        if self.journal is not None:
            self.journal.append(op, args)

    # -- producing -----------------------------------------------------------

    def enqueue(self, key: str, payload: object = None) -> bool:
        """Add a task; a key already known is idempotently ignored."""
        if key in self._tasks:
            return False
        self._record("enqueue", key=key, payload=payload)
        self._tasks[key] = _Task(key=key, payload=payload)
        self._order.append(key)
        self.counters["enqueued"] += 1
        return True

    # -- worker side ---------------------------------------------------------

    def lease(self, now: float) -> Optional[Lease]:
        """Deliver the oldest eligible queued task, or ``None``.

        Eligible means QUEUED with its backoff hold (``not_before``)
        elapsed.  Leasing increments the task's attempt count and arms
        a deadline ``now + lease_timeout``; the worker must heartbeat
        before the deadline or the lease expires.
        """
        for key in self._order:
            task = self._tasks[key]
            if task.state == QUEUED and task.not_before <= now:
                # The FIFO scan is a pure function of broker state, so
                # journalling just ``now`` replays the same delivery.
                self._record("lease", now=now)
                task.state = LEASED
                task.attempts += 1
                return self._deliver(task, now, task.attempts - 1, "leased")
        return None

    def duplicate_lease(self, key: str, now: float) -> Optional[Lease]:
        """Fault-injection hook: deliver a LEASED task a second time.

        Models an at-least-once broker re-delivering a message that was
        not lost.  The twin lease shares the original's attempt number
        — it is not a retry — so two workers race to complete the same
        attempt and the loser's completion must be absorbed as a
        duplicate.
        """
        task = self._tasks.get(key)
        if task is None or task.state != LEASED:
            return None
        self._record("duplicate_lease", key=key, now=now)
        return self._deliver(task, now, task.attempts - 1, "duplicated")

    def _deliver(self, task: _Task, now: float, attempt: int,
                 counter: str) -> Lease:
        """Create and register one lease on ``task``."""
        lease_id = self._next_lease
        self._next_lease += 1
        deadline = now + self.lease_timeout
        task.leases[lease_id] = deadline
        task.history.append(lease_id)
        self._lease_owner[lease_id] = task.key
        self.counters[counter] += 1
        return Lease(lease_id=lease_id, key=task.key, attempt=attempt,
                     deadline=deadline, payload=task.payload)

    def heartbeat(self, lease_id: int, now: float) -> bool:
        """Extend a live lease to ``now + lease_timeout``.

        Returns ``False`` for a lease that already expired (or never
        existed) — the worker should abandon the attempt, because the
        broker has requeued or dead-lettered the task.
        """
        key = self._lease_owner.get(lease_id)
        if key is None:
            return False
        task = self._tasks[key]
        if lease_id not in task.leases:
            return False
        self._record("heartbeat", lease_id=lease_id, now=now)
        task.leases[lease_id] = now + self.lease_timeout
        self.counters["heartbeats"] += 1
        return True

    def _resolve_owner(self, lease_id: int) -> Optional[str]:
        """The key a lease id maps to, or ``None`` for a *pruned* id.

        Lease ids of resolved (DONE/DEAD) tasks are pruned from the
        index so a long-lived broker cannot leak one entry per lease;
        a pruned-but-once-issued id therefore resolves to ``None``
        (its task settled long ago), while an id that was *never*
        issued is a caller bug and raises.
        """
        key = self._lease_owner.get(lease_id)
        if key is None and not 0 <= lease_id < self._next_lease:
            raise KeyError(f"unknown lease id {lease_id}")
        return key

    def _prune(self, task: _Task) -> None:
        """Drop a resolved task's lease ids from the owner index."""
        for lease_id in task.history:
            self._lease_owner.pop(lease_id, None)
        task.history.clear()

    def complete(self, lease_id: int, now: float,
                 values: Optional[List[float]] = None,
                 elapsed: Optional[float] = None) -> str:
        """Report a finished attempt; idempotent by construction.

        ``values`` (and ``elapsed``) optionally ship the computed cell
        through the broker: the first completion pins them, a
        :meth:`result` query reads them back.  The in-process simulation
        never passes them (its workers keep values locally); networked
        workers always do — the broker is their only channel home.

        Returns one of:

        * ``"completed"`` — first completion, lease was still live;
        * ``"late"`` — first completion, but the lease had already
          expired (the task was in flight again).  Accepted anyway:
          digest-addressed values are deterministic, so the late result
          equals whatever a retry would have produced;
        * ``"duplicate"`` — the task was already DONE (a twin delivery
          or an even later straggler).  Counted and ignored.
        """
        key = self._resolve_owner(lease_id)
        # Even an absorbed duplicate mutates a counter, so every
        # non-raising completion is journalled.
        self._record("complete", lease_id=lease_id, now=now,
                     values=None if values is None
                     else [float(v) for v in values], elapsed=elapsed)
        if key is None:
            # A straggler for a task that already resolved and had its
            # lease ids pruned: absorb it like any other duplicate.
            self.counters["duplicates"] += 1
            return "duplicate"
        task = self._tasks[key]
        if task.state in (DONE, DEAD):
            # Already settled (DEAD: exhausted while this straggler
            # computed; the dead letter already shipped) — absorb.
            self.counters["duplicates"] += 1
            return "duplicate"
        live = lease_id in task.leases
        task.state = DONE
        task.leases.clear()
        if values is not None:
            task.result = ([float(v) for v in values], elapsed)
        self._prune(task)
        self.counters["completed"] += 1
        if not live:
            self.counters["late"] += 1
            return "late"
        return "completed"

    def fail(self, lease_id: int, now: float, reason: str = "failed") -> str:
        """A worker explicitly reports an attempt failed.

        Faster than waiting for lease expiry, same outcome: requeue
        with backoff, or a dead letter once attempts are exhausted.
        Returns ``"requeued"``, ``"dead"``, or ``"ignored"`` (the task
        already completed via another lease).
        """
        key = self._resolve_owner(lease_id)
        if key is None:
            return "ignored"
        self._record("fail", lease_id=lease_id, now=now, reason=reason)
        task = self._tasks[key]
        task.leases.pop(lease_id, None)
        if task.state != LEASED:
            return "ignored"
        if task.leases:
            return "ignored"
        return self._requeue_or_bury(task, now, reason)

    def expire(self, now: float) -> List[int]:
        """Reap every lease whose deadline has passed; returns their ids.

        A LEASED task whose last lease expired is requeued (with the
        backoff hold) or dead-lettered.  Leases left dangling on DONE
        tasks are simply dropped.
        """
        if self.journal is not None and any(
                deadline <= now
                for task in self._tasks.values()
                for deadline in task.leases.values()):
            # Pre-scan instead of recording per-reap: one journal record
            # replays the whole sweep, and a no-op sweep leaves none.
            self._record("expire", now=now)
        reaped: List[int] = []
        for key in self._order:
            task = self._tasks[key]
            dead = [lid for lid, deadline in task.leases.items()
                    if deadline <= now]
            for lid in dead:
                del task.leases[lid]
                self.counters["expired"] += 1
                reaped.append(lid)
            if task.state == LEASED and dead and not task.leases:
                self._requeue_or_bury(task, now, "lease expired")
        return reaped

    def _requeue_or_bury(self, task: _Task, now: float, reason: str) -> str:
        """Send a failed task back to the queue, or to the dead letters."""
        if task.attempts >= self.max_attempts:
            task.state = DEAD
            self._prune(task)
            letter = DeadLetter(
                key=task.key, attempts=task.attempts,
                reason=f"{reason} after {task.attempts} attempts",
                payload=task.payload)
            self.dead_letters.append(letter)
            self.counters["dead"] += 1
            return "dead"
        task.state = QUEUED
        task.not_before = now + self.backoff.delay(task.key,
                                                   task.attempts - 1)
        self.counters["retried"] += 1
        return "requeued"

    # -- observation ---------------------------------------------------------

    def state(self, key: str) -> str:
        """The lifecycle state of one task."""
        return self._tasks[key].state

    def result(self, key: str) -> Optional[Tuple[List[float], Optional[float]]]:
        """The ``(values, elapsed)`` a completion shipped, or ``None``.

        ``None`` means the task has not completed *with values* — it may
        be pending, dead, or completed by a worker that kept its values
        local (the in-process simulation).
        """
        return self._tasks[key].result

    def outstanding(self) -> int:
        """How many tasks are not yet DONE or DEAD."""
        return sum(1 for t in self._tasks.values()
                   if t.state in (QUEUED, LEASED))

    def active_leases(self) -> int:
        """How many live leases workers currently hold.

        Non-zero means some coordinator's run is in flight — the signal
        ``reset`` uses to refuse discarding it without ``force``.
        """
        return sum(len(t.leases) for t in self._tasks.values())

    def snapshot(self) -> Dict[str, object]:
        """The complete observable state, as comparable plain data.

        Two brokers are in identical states iff their snapshots are
        equal — the property the journal replay tests assert.  Payloads
        are excluded (they are opaque caller objects whose equality is
        not the broker's to define); everything else is covered: config,
        per-task lifecycle, lease ids and deadlines, queue order, the
        lease index, counters, and dead letters.
        """
        return {
            "config": {
                "lease_timeout": self.lease_timeout,
                "max_attempts": self.max_attempts,
                "backoff": asdict(self.backoff),
            },
            "tasks": {
                key: {
                    "state": task.state,
                    "attempts": task.attempts,
                    "not_before": task.not_before,
                    "leases": dict(task.leases),
                    "history": list(task.history),
                    "result": task.result,
                }
                for key, task in self._tasks.items()
            },
            "order": list(self._order),
            "lease_owner": dict(self._lease_owner),
            "next_lease": self._next_lease,
            "counters": dict(self.counters),
            "dead_letters": [(letter.key, letter.attempts, letter.reason)
                             for letter in self.dead_letters],
        }

    def next_eligible(self) -> Optional[float]:
        """The earliest ``not_before`` among queued tasks, or ``None``.

        Lets the coordinator jump virtual time straight to the next
        backoff release instead of spinning ticks.
        """
        holds = [t.not_before for t in self._tasks.values()
                 if t.state == QUEUED]
        return min(holds) if holds else None
