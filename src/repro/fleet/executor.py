"""The fleet executor: a coordinator, N leased workers, one broker.

:class:`FleetExecutor` satisfies the engine's executor contract — its
``run(payloads)`` returns one cell result per payload, in payload order
— but instead of a thread or process pool it drives a work queue: every
cell is enqueued on a broker keyed by its job digest, workers lease
cells, compute them through the very same
:func:`~repro.evaluation.engine._execute_payload` path as every other
executor, heartbeat while busy, and complete back to the broker.  Lost
workers, lost completions, and duplicated deliveries are therefore
recoverable by protocol (expire → backoff → requeue → dead-letter), not
by luck.

Determinism is the whole design.  The simulation runs on a
:class:`~repro.fleet.clock.ManualClock`: workers are cooperatively
stepped by the coordinator on virtual ticks, real compute happens at
lease time (and is bit-identical regardless of scheduling, because
every :class:`~repro.evaluation.TrialJob` carries its own seed
material), and every injected fault is a pure function of the
:class:`~repro.fleet.faults.FaultSchedule` seed and the cell digest.
Run the same grid under the same schedule twice and you get the same
leases, the same expiries, the same retries, the same dead letters —
which is what lets tier-1 tests assert on failure modes instead of
hoping for them.

Cells the fleet could not complete (retry exhaustion) are returned as
placeholder values with ``cacheable=False`` so the engine never
persists them; their provenance lands in :attr:`FleetExecutor.dead_letters`
for the run record.  Set ``dead_letter_policy="raise"`` to fail the
run instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from .backoff import BackoffPolicy
from .broker import InProcessBroker, Lease
from .clock import ManualClock
from .faults import FaultSchedule


class FleetError(ReproError, RuntimeError):
    """The fleet could not finish a grid (dead letters under ``raise``,
    or a coordinator stall, which is always a bug)."""


@dataclass(frozen=True)
class FleetOptions:
    """Tuning knobs for one fleet: pool size, lease policy, faults.

    The defaults describe the CI fleet: 4 workers, a 5-virtual-second
    lease kept alive by 2-second heartbeats, 3 attempts per cell, and
    no injected faults.  Simulated cell durations span 1–8 virtual
    seconds, so under the defaults long cells genuinely depend on their
    heartbeats — suppressing them (``FaultSchedule.delay``) expires a
    lease mid-compute, exactly the failure the protocol must absorb.
    """

    n_workers: int = 4
    lease_timeout: float = 5.0
    heartbeat_interval: float = 2.0
    max_attempts: int = 3
    tick: float = 1.0
    backoff: BackoffPolicy = BackoffPolicy()
    faults: FaultSchedule = FaultSchedule()
    #: ``"record"`` returns placeholder cells (``cacheable=False``) and
    #: surfaces dead letters in stats/records; ``"raise"`` aborts.
    dead_letter_policy: str = "record"
    #: ``HOST:PORT`` of a networked broker server.  When set,
    #: :func:`create_fleet_executor` returns the remote coordinator
    #: (:class:`~repro.fleet.net.executor.RemoteFleetExecutor`) instead
    #: of the in-process simulation; ``n_workers``/``tick``/``faults``
    #: then describe nothing — real worker processes bring their own.
    broker: Optional[str] = None
    #: Remote coordinator poll cadence (seconds between expire/settle
    #: sweeps) and per-``run`` wall-clock budget.
    poll_interval: float = 0.2
    run_timeout: float = 600.0
    #: How long one remote broker call rides out unreachability
    #: (reconnecting under seeded backoff) before surfacing
    #: ``ConnectionError`` — the window a journalled broker has to
    #: restart unnoticed.
    reconnect_timeout: float = 30.0
    #: Discard another coordinator's in-flight run on ``reset`` instead
    #: of failing with ``BrokerBusyError``.
    force_reset: bool = False

    def __post_init__(self):
        """Validate pool and timing parameters."""
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.lease_timeout <= 0 or self.heartbeat_interval <= 0:
            raise ValueError("lease_timeout and heartbeat_interval must be "
                             "> 0")
        if self.tick <= 0:
            raise ValueError(f"tick must be > 0, got {self.tick}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.dead_letter_policy not in ("record", "raise"):
            raise ValueError(f"dead_letter_policy must be 'record' or "
                             f"'raise', got {self.dead_letter_policy!r}")
        if self.poll_interval <= 0 or self.run_timeout <= 0:
            raise ValueError("poll_interval and run_timeout must be > 0")
        if self.reconnect_timeout <= 0:
            raise ValueError(f"reconnect_timeout must be > 0, "
                             f"got {self.reconnect_timeout}")
        if self.broker is not None:
            # Validate the HOST:PORT shape eagerly — a typo should fail
            # at option construction, not mid-run inside a socket call.
            from .net.protocol import parse_address
            parse_address(self.broker)


@dataclass
class FleetStats:
    """Observable fleet counters, mergeable across runs and cores.

    ``leased``/``completed``/``retried``/``dead`` are the headline
    counters surfaced by ``/stats`` and ``cache stats --json``; the
    rest pin the fault machinery in tests (a chaos run must show its
    kills and duplicates, or the schedule silently did nothing).
    ``reconnects`` (client re-connections after I/O loss) and
    ``replayed`` (journal mutations a restarted broker rebuilt from)
    are the recovery counters — nonzero means a run rode out broker
    downtime.
    """

    enqueued: int = 0
    leased: int = 0
    duplicated: int = 0
    heartbeats: int = 0
    completed: int = 0
    duplicates: int = 0
    late: int = 0
    expired: int = 0
    retried: int = 0
    dead: int = 0
    killed: int = 0
    dropped: int = 0
    reconnects: int = 0
    replayed: int = 0

    def merge(self, other: "FleetStats") -> None:
        """Accumulate another stats object into this one."""
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain JSON-ready mapping."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def active(self) -> bool:
        """Whether this fleet has done any work at all."""
        return any(getattr(self, spec.name) for spec in fields(self))


def assemble_results(order: Sequence[str], jobs: Dict[str, object],
                     results: Dict[str, Tuple[List[float], Optional[float]]],
                     dead: set, options: FleetOptions) -> List[Tuple]:
    """Fold a settled run back into payload-order engine cell triples.

    Shared by the in-process and networked coordinators: completed keys
    become ``(values, elapsed, cacheable=True)`` cells, dead-lettered
    keys become uncacheable placeholders (or abort the run under
    ``dead_letter_policy="raise"``), and a key in neither map is a
    coordinator bug worth crashing on.
    """
    out: List[Tuple] = []
    for key in order:
        if key in results:
            values, elapsed = results[key]
            out.append((list(values), elapsed, True))
        elif key in dead:
            if options.dead_letter_policy == "raise":
                raise FleetError(
                    f"cell {key} dead-lettered after "
                    f"{options.max_attempts} attempts")
            # Placeholder values, never cached: the run completes
            # and records the loss instead of poisoning the cache.
            out.append(([0.0] * jobs[key].n_trials, None, False))
        else:
            raise FleetError(f"coordinator lost track of cell {key}; "
                             f"this is a fleet bug")
    return out


class _Worker:
    """One cooperatively-stepped simulated worker."""

    __slots__ = ("index", "lease", "values", "elapsed", "finish_at",
                 "next_beat", "suppress", "drop", "killed")

    def __init__(self, index: int):
        self.index = index
        self.lease: Optional[Lease] = None
        self.reset()

    def reset(self) -> None:
        """Return to idle (a completed attempt, or a respawn)."""
        self.lease = None
        self.values = None
        self.elapsed = None
        self.finish_at = 0.0
        self.next_beat = 0.0
        self.suppress = False
        self.drop = False
        self.killed = False

    @property
    def busy(self) -> bool:
        """Whether the worker currently holds a lease."""
        return self.lease is not None


class FleetExecutor:
    """Work-queue executor over an in-process broker and virtual clock.

    Satisfies the engine's executor protocol (``run(payloads)`` →
    one ``(values, elapsed, cacheable)`` triple per payload, in payload
    order), so it drops into :func:`~repro.evaluation.run_grid`,
    :meth:`PanelDef.run <repro.experiments.catalog.PanelDef.run>`, and
    :class:`~repro.service.ServiceCore` unchanged.  Results are
    bit-identical to :class:`~repro.evaluation.SerialExecutor` —
    including under injected faults — because jobs carry their own seed
    material and completion is idempotent per digest.

    One instance accumulates :attr:`stats` and :attr:`dead_letters`
    across its ``run`` calls; the service tier creates one per recorded
    run so the totals describe exactly that record.
    """

    def __init__(self, options: Optional[FleetOptions] = None,
                 clock: Optional[ManualClock] = None, broker_factory=None):
        self.options = options if options is not None else FleetOptions()
        self.clock = clock if clock is not None else ManualClock()
        #: Builds the per-run broker.  The default is the in-process
        #: dict; tests inject a :class:`~repro.fleet.net.SocketBroker`
        #: factory here to run the identical simulation over a real
        #: socket server (the contract, not the transport, decides).
        self.broker_factory = (broker_factory if broker_factory is not None
                               else InProcessBroker)
        self.stats = FleetStats()
        self.dead_letters: List[Dict[str, object]] = []

    # -- executor protocol ---------------------------------------------------

    def run(self, payloads: Sequence[Tuple]) -> List[Tuple]:
        """Drive every payload through the fleet; results in payload order.

        Unlike the streaming pool executors this returns a fully
        materialised list: under faults a cell's completion order is a
        scheduling artifact, so the fleet settles the whole grid before
        handing anything back.
        """
        if not payloads:
            return []
        opts = self.options
        broker = self.broker_factory(lease_timeout=opts.lease_timeout,
                                     max_attempts=opts.max_attempts,
                                     backoff=opts.backoff)
        order: List[str] = []
        jobs: Dict[str, object] = {}
        for point, job in payloads:
            order.append(job.digest)
            if broker.enqueue(job.digest, (point, job)):
                jobs[job.digest] = job
        workers = [_Worker(i) for i in range(opts.n_workers)]
        results: Dict[str, Tuple[List[float], Optional[float]]] = {}
        self._simulate(broker, workers, results)
        self._harvest(broker, jobs)
        dead = {letter.key for letter in broker.dead_letters}
        return assemble_results(order, jobs, results, dead, opts)

    # -- simulation ----------------------------------------------------------

    def _duration(self, key: str) -> float:
        """A cell's simulated compute time: 1–8 virtual seconds.

        Deterministic per digest, independent of the fault seed, and
        spanning the lease timeout so heartbeats are load-bearing.
        """
        word = hashlib.blake2b(f"duration\x1f{key}".encode("utf-8"),
                               digest_size=8).digest()
        return 1.0 + int.from_bytes(word, "little") % 8

    def _assign(self, worker: _Worker, lease: Lease, now: float) -> None:
        """Hand a lease to a worker, rolling its fault dice."""
        faults = self.options.faults
        worker.lease = lease
        worker.killed = faults.kill_worker(lease.key, lease.attempt)
        worker.drop = faults.drop_completion(lease.key, lease.attempt)
        worker.suppress = faults.delay_heartbeat(lease.key, lease.attempt)
        worker.finish_at = now + self._duration(lease.key)
        worker.next_beat = now + self.options.heartbeat_interval
        if worker.killed:
            # The worker dies mid-job: its values never exist, its
            # lease dangles until the broker reaps it.
            self.stats.killed += 1
            return
        point, job = lease.payload
        from ..evaluation.engine import _execute_payload
        worker.values, worker.elapsed = _execute_payload((point, job))

    def _dispatch(self, broker: InProcessBroker, workers: List[_Worker],
                  now: float, dup_queue: List[str]) -> None:
        """Lease eligible tasks onto idle workers (duplicates included).

        Duplicate deliveries the schedule demands while every worker is
        busy are deferred in ``dup_queue`` and served ahead of fresh
        leases the moment a worker frees — as long as the original
        attempt is still in flight (a task that completed first simply
        never gets its twin, like a real redelivery racing completion).
        """
        faults = self.options.faults
        while dup_queue:
            worker = next((w for w in workers if not w.busy), None)
            if worker is None:
                return
            dup = broker.duplicate_lease(dup_queue.pop(0), now)
            if dup is not None:
                self._assign(worker, dup, now)
        while True:
            worker = next((w for w in workers if not w.busy), None)
            if worker is None:
                return
            lease = broker.lease(now)
            if lease is None:
                return
            self._assign(worker, lease, now)
            if faults.duplicate_delivery(lease.key, lease.attempt):
                dup_queue.append(lease.key)

    def _step(self, broker: InProcessBroker, workers: List[_Worker],
              results: Dict, now: float) -> None:
        """Advance every busy worker one tick: finish, beat, or wait."""
        for worker in workers:
            if not worker.busy or worker.killed:
                continue
            if now >= worker.finish_at:
                if worker.drop:
                    # The completion message is lost in transit; the
                    # lease dangles and the broker will retry the cell.
                    self.stats.dropped += 1
                else:
                    status = broker.complete(worker.lease.lease_id, now)
                    if status != "duplicate" and worker.lease.key not in results:
                        results[worker.lease.key] = (worker.values,
                                                     worker.elapsed)
                worker.reset()
            elif now >= worker.next_beat:
                if not worker.suppress:
                    broker.heartbeat(worker.lease.lease_id, now)
                worker.next_beat = now + self.options.heartbeat_interval

    def _simulate(self, broker: InProcessBroker, workers: List[_Worker],
                  results: Dict) -> None:
        """The coordinator loop: dispatch, tick, step, reap — to quiescence."""
        opts = self.options
        limit = 1000 + int(
            200 * broker.counters["enqueued"] * opts.max_attempts)
        iterations = 0
        dup_queue: List[str] = []
        while broker.outstanding() > 0:
            iterations += 1
            if iterations > limit:
                raise FleetError(
                    f"fleet made no progress after {limit} ticks with "
                    f"{broker.outstanding()} cells outstanding; "
                    f"this is a coordinator bug")
            now = self.clock.now()
            self._dispatch(broker, workers, now, dup_queue)
            if not any(w.busy for w in workers):
                # Everything queued is on a backoff hold: jump straight
                # to the next release instead of spinning ticks.
                hold = broker.next_eligible()
                if hold is not None and hold > now:
                    self.clock.advance(hold - now)
                    continue
            now = self.clock.advance(opts.tick)
            self._step(broker, workers, results, now)
            reaped = set(broker.expire(now))
            for worker in workers:
                if (worker.busy and worker.killed
                        and worker.lease.lease_id in reaped):
                    # The broker noticed the death; respawn the worker.
                    worker.reset()

    def _harvest(self, broker: InProcessBroker, jobs: Dict) -> None:
        """Fold one settled broker into the executor-lifetime telemetry."""
        for name, value in broker.counters.items():
            setattr(self.stats, name, getattr(self.stats, name) + value)
        for letter in broker.dead_letters:
            job = jobs[letter.key]
            self.dead_letters.append({
                "digest": letter.key,
                "series_value": job.series_value,
                "sweep_value": job.sweep_value,
                "attempts": letter.attempts,
                "reason": letter.reason,
            })

    # -- record/stats payloads ----------------------------------------------

    def record_payload(self) -> Dict[str, object]:
        """The ``fleet`` key for a run record: counters + dead letters.

        Environment metadata like ``timings``: excluded from ``run_id``,
        emitted only for fleet-executed runs, so every other record
        round-trips byte-for-byte unchanged.
        """
        payload: Dict[str, object] = {"counters": self.stats.as_dict()}
        if self.dead_letters:
            payload["dead_letters"] = [dict(d) for d in self.dead_letters]
        return payload


def create_fleet_executor(options: Optional[FleetOptions] = None,
                          clock: Optional[ManualClock] = None):
    """The fleet executor an options object actually asks for.

    ``options.broker`` unset: the deterministic in-process simulation
    (:class:`FleetExecutor`).  Set: the networked coordinator
    (:class:`~repro.fleet.net.executor.RemoteFleetExecutor`) that
    enqueues onto the socket broker at that address and lets real
    worker processes compute.  Both satisfy the executor protocol and
    expose the same ``stats``/``dead_letters``/``record_payload``
    surface, so every caller upstream is transport-blind.
    """
    opts = options if options is not None else FleetOptions()
    if opts.broker:
        # Imported lazily: the networked tier is dead weight for the
        # simulated fleet, and the module import would be circular.
        from .net.executor import RemoteFleetExecutor
        return RemoteFleetExecutor(opts)
    return FleetExecutor(opts, clock=clock)
