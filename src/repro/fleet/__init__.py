"""Fault-tolerant work-queue executor (``--executor fleet``).

A coordinator enqueues digest-addressed :class:`~repro.evaluation.TrialJob`
cells onto a broker; N workers lease, heartbeat, compute, and complete
them.  Lost workers, lost completions, and duplicated deliveries are
absorbed by protocol — lease expiry, capped-exponential requeue,
bounded retries, dead letters, idempotent completion — and the whole
machine runs on a virtual clock with a seeded fault schedule, so every
failure mode is exercised deterministically in tier-1 tests.  Broker
death itself is recoverable through the write-ahead
:class:`~repro.fleet.journal.Journal`: every mutation is logged before
it is applied and :func:`~repro.fleet.journal.replay_journal` rebuilds
the broker bit-for-bit on restart.  See ``docs/engine.md`` ("Fleet
executor") for the protocol and state diagram.
"""

from .backoff import BackoffPolicy
from .broker import (
    DEAD,
    DONE,
    LEASED,
    QUEUED,
    BrokerBusyError,
    DeadLetter,
    InProcessBroker,
    Lease,
)
from .clock import ManualClock, MonotonicClock
from .executor import (
    FleetError,
    FleetExecutor,
    FleetOptions,
    FleetStats,
    create_fleet_executor,
)
from .faults import FaultSchedule
from .journal import Journal, JournalError, read_journal, replay_journal

__all__ = [
    "BackoffPolicy",
    "BrokerBusyError",
    "DEAD",
    "DONE",
    "DeadLetter",
    "FaultSchedule",
    "FleetError",
    "FleetExecutor",
    "FleetOptions",
    "FleetStats",
    "InProcessBroker",
    "Journal",
    "JournalError",
    "LEASED",
    "Lease",
    "ManualClock",
    "MonotonicClock",
    "QUEUED",
    "create_fleet_executor",
    "read_journal",
    "replay_journal",
]
