"""Fault-tolerant work-queue executor (``--executor fleet``).

A coordinator enqueues digest-addressed :class:`~repro.evaluation.TrialJob`
cells onto a broker; N workers lease, heartbeat, compute, and complete
them.  Lost workers, lost completions, and duplicated deliveries are
absorbed by protocol — lease expiry, capped-exponential requeue,
bounded retries, dead letters, idempotent completion — and the whole
machine runs on a virtual clock with a seeded fault schedule, so every
failure mode is exercised deterministically in tier-1 tests.  See
``docs/engine.md`` ("Fleet executor") for the protocol and state
diagram.
"""

from .backoff import BackoffPolicy
from .broker import DEAD, DONE, LEASED, QUEUED, DeadLetter, InProcessBroker, Lease
from .clock import ManualClock, MonotonicClock
from .executor import (
    FleetError,
    FleetExecutor,
    FleetOptions,
    FleetStats,
    create_fleet_executor,
)
from .faults import FaultSchedule

__all__ = [
    "BackoffPolicy",
    "DEAD",
    "DONE",
    "DeadLetter",
    "FaultSchedule",
    "FleetError",
    "FleetExecutor",
    "FleetOptions",
    "FleetStats",
    "InProcessBroker",
    "LEASED",
    "Lease",
    "ManualClock",
    "MonotonicClock",
    "QUEUED",
    "create_fleet_executor",
]
