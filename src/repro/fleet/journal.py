"""The broker's write-ahead journal: crash-safe, replayable, append-only.

The networked broker (``python -m repro broker``) is one in-memory
process — without a journal, SIGKILL mid-run vaporises every queue
entry, lease, counter, and dead letter, which is the one failure mode
the fleet protocol cannot absorb by retrying.  The journal closes that
hole: every successful broker *mutation* is appended to a JSON-lines
log **before** it is applied (a proper write-ahead discipline), and
:func:`replay_journal` rebuilds the exact broker state — queue order,
lease ids, attempt counts, backoff holds, counters, dead letters —
bit-for-bit on restart.

Replay works because the broker is already a deterministic state
machine over explicit inputs: time never flows inside
:class:`~repro.fleet.broker.InProcessBroker` (every method takes
``now``), lease ids are a sequential counter, FIFO scans are pure
functions of state, and backoff jitter is seeded.  Journalling the
method calls *is* journalling the state.

Record format — one JSON object per ``\\n``-terminated line::

    {"op": "config",  "args": {"journal_version": 1, "lease_timeout": ..,
                               "max_attempts": .., "backoff": {..}}}
    {"op": "enqueue", "args": {"key": .., "payload": <base64 pickle>}}
    {"op": "lease",   "args": {"now": ..}}
    ... one line per mutation, in application order ...

The first record is always ``config`` (the broker's constructor
arguments); :meth:`Journal.reset` compacts the file back down to a
single fresh ``config`` record — the coordinator's per-run ``reset``
therefore doubles as snapshot compaction, so the journal never grows
across runs.

Durability and corruption policy:

* ``fsync="always"`` (the default) fsyncs after every record — the
  journal survives power loss, not just process death;
  ``fsync="never"`` leaves flushing to the OS (fast, survives SIGKILL
  but not the machine).
* A **torn tail** — a final record truncated mid-write by a crash — is
  expected and tolerated: opening or reading the journal silently drops
  an unparseable *final* record (and truncates it on open, so appends
  continue from a clean boundary).
* **Mid-file corruption** is not tolerated: an unparseable record with
  valid records after it means the log has a hole, and replaying across
  a hole would silently diverge from the pre-crash broker.  That raises
  :class:`JournalError` instead.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..exceptions import ReproError
from .backoff import BackoffPolicy
from .broker import InProcessBroker

#: Bumped on any incompatible record-format change; ``config`` records
#: carry it so a replay of a future journal refuses loudly.
JOURNAL_VERSION = 1

#: Legal ``fsync`` policies for :class:`Journal`.
FSYNC_POLICIES = ("always", "never")

#: The mutating broker ops a journal may contain (beyond ``config``).
MUTATION_OPS = ("enqueue", "lease", "duplicate_lease", "heartbeat",
                "complete", "fail", "expire")


class JournalError(ReproError, RuntimeError):
    """A journal that cannot be trusted: mid-file corruption, a missing
    or incompatible ``config`` record, or an unknown operation."""


# ---------------------------------------------------------------------------
# Payload encoding (the canonical copy; ``fleet.net.protocol`` re-uses it).
# ---------------------------------------------------------------------------

def encode_payload(payload: object) -> Optional[str]:
    """Pickle + base64 a job payload so it embeds in a JSON record."""
    if payload is None:
        return None
    return base64.b64encode(pickle.dumps(payload)).decode("ascii")


def decode_payload(text: Optional[str]) -> object:
    """Invert :func:`encode_payload`; ``None`` stays ``None``."""
    if text is None:
        return None
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# ---------------------------------------------------------------------------
# Scanning (shared by open-time recovery and read/replay).
# ---------------------------------------------------------------------------

def _scan(raw: bytes, path: Path
          ) -> Tuple[int, List[Dict[str, object]]]:
    """Parse ``raw`` into records; returns ``(clean_end, records)``.

    ``clean_end`` is the byte offset of the end of the last intact
    record — everything beyond it is a torn tail the caller may drop or
    truncate.  An unparseable record that is *not* the final one raises
    :class:`JournalError` (mid-file corruption).
    """
    records: List[Dict[str, object]] = []
    pos, total = 0, len(raw)
    while pos < total:
        newline = raw.find(b"\n", pos)
        end = total if newline == -1 else newline + 1
        record: Optional[Dict[str, object]] = None
        if newline != -1:
            try:
                parsed = json.loads(raw[pos:newline].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = None
            if isinstance(parsed, dict) and "op" in parsed:
                record = parsed
        if record is None:
            if end >= total:
                return pos, records  # torn tail: drop the partial record
            raise JournalError(
                f"corrupt journal record at byte {pos} of {path}: a later "
                f"record is intact, so this is mid-file corruption, not a "
                f"torn tail — refusing to replay across a hole")
        records.append(record)
        pos = end
    return pos, records


class Journal:
    """An append-only JSON-lines log of broker mutations.

    Opening a journal performs crash recovery: a torn final record is
    truncated away so appends resume from a clean boundary, while
    mid-file corruption raises :class:`JournalError`.  Attach the open
    journal to an :class:`~repro.fleet.broker.InProcessBroker` (its
    ``journal=`` parameter, or assignment to ``broker.journal``) and
    every successful mutation is appended before it is applied.
    """

    def __init__(self, path, fsync: str = "always"):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, "
                             f"got {fsync!r}")
        self.path = Path(path)
        self.fsync = fsync
        #: Records appended through this handle (config records included).
        self.appended = 0
        self.records_on_disk = self._recover()
        self._handle = open(self.path, "ab")

    # -- crash recovery ------------------------------------------------------

    def _recover(self) -> int:
        """Truncate a torn tail; returns the count of intact records."""
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        clean_end, records = _scan(raw, self.path)
        if clean_end < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(clean_end)
        return len(records)

    # -- writing -------------------------------------------------------------

    def append(self, op: str, args: Dict[str, object]) -> None:
        """Write one mutation record (payloads pickled in place)."""
        args = dict(args)
        if "payload" in args:
            args["payload"] = encode_payload(args["payload"])
        line = json.dumps({"op": op, "args": args},
                          separators=(",", ":")).encode("utf-8") + b"\n"
        self._handle.write(line)
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        self.appended += 1
        self.records_on_disk += 1

    def reset(self, *, lease_timeout: float, max_attempts: int,
              backoff: Optional[BackoffPolicy] = None) -> None:
        """Compact to a single fresh ``config`` record, atomically.

        The replacement file is written beside the journal and renamed
        over it, so a crash mid-compaction leaves either the old log or
        the new config — never a mix.
        """
        config = {
            "journal_version": JOURNAL_VERSION,
            "lease_timeout": float(lease_timeout),
            "max_attempts": int(max_attempts),
            "backoff": None if backoff is None else asdict(backoff),
        }
        self._handle.close()
        staging = self.path.with_name(self.path.name + ".compact")
        with open(staging, "wb") as handle:
            handle.write(json.dumps({"op": "config", "args": config},
                                    separators=(",", ":")).encode("utf-8")
                         + b"\n")
            handle.flush()
            if self.fsync == "always":
                os.fsync(handle.fileno())
        os.replace(staging, self.path)
        self._handle = open(self.path, "ab")
        self.appended += 1
        self.records_on_disk = 1

    def flush(self) -> None:
        """Push buffered records to the OS (and disk under ``always``)."""
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close; the journal can be reopened to resume."""
        if self._handle.closed:
            return
        self.flush()
        self._handle.close()

    def __enter__(self) -> "Journal":
        """Context-manager entry: the open journal."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: flush and close."""
        self.close()


# ---------------------------------------------------------------------------
# Reading and replaying.
# ---------------------------------------------------------------------------

def read_journal(path) -> Tuple[Dict[str, object],
                                List[Tuple[str, Dict[str, object]]]]:
    """Parse a journal into ``(config_args, [(op, args), ...])``.

    Tolerates a torn tail (the partial final record is dropped without
    modifying the file); raises :class:`JournalError` on mid-file
    corruption, an empty journal, or a journal whose first record is
    not ``config``.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}")
    _, records = _scan(raw, path)
    if not records:
        raise JournalError(f"journal {path} holds no intact records")
    first = records[0]
    if first["op"] != "config":
        raise JournalError(
            f"journal {path} does not start with a config record "
            f"(got {first['op']!r}); it was not written by this broker")
    config = first["args"]
    version = config.get("journal_version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} has journal_version {version!r}; this "
            f"broker replays version {JOURNAL_VERSION}")
    return config, [(r["op"], r.get("args") or {}) for r in records[1:]]


def apply_record(broker: InProcessBroker, op: str,
                 args: Dict[str, object]) -> None:
    """Re-apply one journalled mutation to a broker being rebuilt."""
    if op == "enqueue":
        broker.enqueue(args["key"], decode_payload(args.get("payload")))
    elif op == "lease":
        broker.lease(args["now"])
    elif op == "duplicate_lease":
        broker.duplicate_lease(args["key"], args["now"])
    elif op == "heartbeat":
        broker.heartbeat(args["lease_id"], args["now"])
    elif op == "complete":
        broker.complete(args["lease_id"], args["now"],
                        values=args.get("values"),
                        elapsed=args.get("elapsed"))
    elif op == "fail":
        broker.fail(args["lease_id"], args["now"],
                    args.get("reason", "failed"))
    elif op == "expire":
        broker.expire(args["now"])
    else:
        raise JournalError(f"unknown journal op {op!r}; "
                           f"known ops: {MUTATION_OPS}")


def replay_journal(path) -> InProcessBroker:
    """Rebuild the broker a journal describes, bit-for-bit.

    The returned broker has no journal attached (attach one via
    ``broker.journal = ...`` to resume journalling) and reports how
    many mutations were replayed in ``broker.replayed``.
    """
    config, ops = read_journal(path)
    backoff = (BackoffPolicy(**config["backoff"])
               if config.get("backoff") else None)
    broker = InProcessBroker(lease_timeout=config["lease_timeout"],
                             max_attempts=config["max_attempts"],
                             backoff=backoff)
    for op, args in ops:
        apply_record(broker, op, args)
    broker.replayed = len(ops)
    return broker
