"""Capped exponential retry backoff with seeded, deterministic jitter.

A requeued job must not thunder straight back onto the broker: each
retry waits ``base * factor**attempt``, jittered upward by at most
``jitter`` (a fraction), and clamped to ``cap``.  The jitter is *not*
drawn from a global RNG — it is a :func:`hashlib.blake2b` digest of
``(seed, key, attempt)``, so a given job's schedule is a pure function
of the policy and the job's digest.  Two properties follow, and the
unit tests pin both:

* **Determinism.** Equal policies produce equal delays for equal
  ``(key, attempt)`` — across processes, under any ``PYTHONHASHSEED``.
* **Monotonicity up to the cap.** As long as ``factor >= 1 + jitter``
  (enforced at construction), jitter can never make attempt ``k+1``
  wait less than attempt ``k``; once the cap is reached the delay
  stays exactly ``cap``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """The retry-delay schedule for one fleet: exponential, jittered, capped.

    Parameters
    ----------
    base:
        Delay before the first retry (attempt 0), in clock seconds.
    factor:
        Growth per attempt.  Must be at least ``1 + jitter`` so the
        schedule stays monotone despite per-attempt jitter.
    cap:
        Upper bound applied *after* jitter: the schedule saturates at
        exactly ``cap`` and stays there.
    jitter:
        Maximum upward fuzz, as a fraction of the un-jittered delay
        (``0.1`` = up to +10%).  Derived from ``seed``/``key``/attempt,
        never from a global RNG.
    seed:
        Fleet-level jitter seed; folded into every delay digest.
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        """Reject schedules that could stall, rewind, or be non-monotone."""
        if self.base <= 0:
            raise ValueError(f"base must be > 0, got {self.base}")
        if self.cap < self.base:
            raise ValueError(f"cap {self.cap} must be >= base {self.base}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.factor < 1.0 + self.jitter:
            raise ValueError(
                f"factor {self.factor} must be >= 1 + jitter "
                f"({1.0 + self.jitter}) or the schedule is not monotone")

    def _unit(self, key: str, attempt: int) -> float:
        """A deterministic uniform in ``[0, 1)`` for one (key, attempt)."""
        payload = f"{self.seed}\x1f{key}\x1f{attempt}".encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2.0 ** 64

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to hold ``key`` off the queue before retry ``attempt``.

        ``attempt`` counts completed failures: the first retry asks for
        attempt 0.  Negative attempts are a caller bug and raise.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = self.base * self.factor ** attempt
        fuzzed = raw * (1.0 + self.jitter * self._unit(key, attempt))
        return min(fuzzed, self.cap)

    def schedule(self, key: str, attempts: int) -> list:
        """The first ``attempts`` delays for ``key``, in order."""
        return [self.delay(key, attempt) for attempt in range(attempts)]
