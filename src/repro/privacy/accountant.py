"""Ledger-style privacy accounting.

Every private algorithm in :mod:`repro.core` records each mechanism
invocation in a :class:`PrivacyAccountant`.  The accountant enforces a
cap when one is configured and can always report the budget actually
consumed, which the integration tests compare against each algorithm's
advertised guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import PrivacyBudgetError
from .budget import PrivacyBudget


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded mechanism invocation."""

    mechanism: str
    budget: PrivacyBudget
    note: str = ""


@dataclass
class PrivacyAccountant:
    """Tracks mechanism invocations under basic sequential composition.

    Parameters
    ----------
    cap:
        Optional hard budget.  When set, :meth:`spend` raises
        :class:`~repro.exceptions.PrivacyBudgetError` on any charge that
        would push the basic-composition total past the cap.

    Notes
    -----
    The accountant intentionally uses *basic* composition for its running
    total: algorithms that rely on advanced composition (Algorithms 2, 3
    and 5 of the paper) compute their per-step budget via
    :func:`repro.privacy.budget.advanced_composition_step` up front and
    register a single "advanced composition group" covering all steps, so
    the ledger total always equals the advertised end-to-end guarantee.
    """

    cap: Optional[PrivacyBudget] = None
    entries: List[LedgerEntry] = field(default_factory=list)

    def spend(self, budget: PrivacyBudget, mechanism: str, note: str = "") -> None:
        """Record a charge, enforcing the cap if one is set."""
        prospective_eps = self.total_epsilon + budget.epsilon
        prospective_delta = self.total_delta + budget.delta
        if self.cap is not None:
            prospective = PrivacyBudget(prospective_eps, prospective_delta)
            if not self.cap.covers(prospective):
                raise PrivacyBudgetError(
                    f"charge {budget} by {mechanism!r} would exceed cap {self.cap} "
                    f"(already spent ({self.total_epsilon:g}, {self.total_delta:g}))"
                )
        self.entries.append(LedgerEntry(mechanism=mechanism, budget=budget, note=note))

    @property
    def total_epsilon(self) -> float:
        """Basic-composition ε consumed so far."""
        return float(sum(entry.budget.epsilon for entry in self.entries))

    @property
    def total_delta(self) -> float:
        """Basic-composition δ consumed so far."""
        return float(sum(entry.budget.delta for entry in self.entries))

    @property
    def total(self) -> Optional[PrivacyBudget]:
        """Total consumed budget, or ``None`` when nothing was spent."""
        if not self.entries:
            return None
        return PrivacyBudget(self.total_epsilon, self.total_delta)

    def remaining(self) -> Optional[PrivacyBudget]:
        """Budget left under the cap, or ``None`` when no cap is set."""
        if self.cap is None:
            return None
        eps = self.cap.epsilon - self.total_epsilon
        delta = self.cap.delta - self.total_delta
        if eps <= 0:
            return None
        return PrivacyBudget(eps, max(delta, 0.0))

    def summary(self) -> str:
        """Human-readable multi-line ledger dump."""
        lines = [f"PrivacyAccountant(cap={self.cap}, spent={self.total})"]
        for i, entry in enumerate(self.entries):
            suffix = f" -- {entry.note}" if entry.note else ""
            lines.append(f"  [{i:3d}] {entry.mechanism}: {entry.budget}{suffix}")
        return "\n".join(lines)
