"""Core differential-privacy mechanisms.

Implements the primitives the paper's algorithms are assembled from:

* :class:`LaplaceMechanism` — Definition 2; adds ``Lap(sensitivity/eps)``
  noise to a numeric query (used by Peeling, Algorithm 4).
* :class:`GaussianMechanism` — classical ``(eps, delta)`` calibration;
  used by the DP-SGD baseline.
* :class:`ExponentialMechanism` — Definition 3; selects a candidate with
  probability proportional to ``exp(eps * u / (2 * sensitivity))`` (used
  by the Frank–Wolfe vertex selection in Algorithms 1 and 2).
* :func:`report_noisy_max` — Laplace-based argmax, the per-round
  primitive inside Peeling.

All mechanisms are stateless value objects; sampling takes an explicit
:class:`numpy.random.Generator`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import logsumexp

from .._validation import check_positive
from ..rng import SeedLike, ensure_rng
from .budget import PrivacyBudget


@dataclass(frozen=True)
class LaplaceMechanism:
    """Pure ε-DP additive Laplace noise for an ℓ1-sensitivity-bounded query.

    Parameters
    ----------
    epsilon:
        Privacy parameter ε > 0.
    sensitivity:
        ℓ1 sensitivity of the query, ``sup_{D~D'} ||q(D) - q(D')||_1``.
    """

    epsilon: float
    sensitivity: float

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.sensitivity, "sensitivity")

    @property
    def scale(self) -> float:
        """Laplace scale parameter ``sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def budget(self) -> PrivacyBudget:
        """The ``(epsilon, 0)`` guarantee of one invocation."""
        return PrivacyBudget(self.epsilon, 0.0)

    def randomize(self, value: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Return ``value + Lap(scale)`` noise, elementwise."""
        rng = ensure_rng(rng)
        arr = np.asarray(value, dtype=float)
        return arr + rng.laplace(loc=0.0, scale=self.scale, size=arr.shape)


@dataclass(frozen=True)
class GaussianMechanism:
    """(ε, δ)-DP additive Gaussian noise for an ℓ2-sensitivity-bounded query.

    Uses the classical calibration
    ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon``.  The
    calibration theorem only guarantees ``(eps, delta)``-DP for
    ``epsilon <= 1``; constructing the mechanism with a larger ε keeps
    the same (now merely heuristic) noise scale but emits a
    :class:`UserWarning` so the regime change cannot pass silently.
    """

    epsilon: float
    delta: float
    sensitivity: float

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")
        check_positive(self.sensitivity, "sensitivity")
        if self.delta >= 1:
            raise ValueError(f"delta must be < 1, got {self.delta}")
        if self.epsilon > 1:
            warnings.warn(
                f"GaussianMechanism calibration is only proven for "
                f"epsilon <= 1; got epsilon={self.epsilon}. The classical "
                f"sigma formula is used as-is, which may under-noise in "
                f"this regime (consider composing epsilon<=1 invocations).",
                UserWarning, stacklevel=3)

    @property
    def sigma(self) -> float:
        """Standard deviation of the calibrated Gaussian noise."""
        return self.sensitivity * math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.epsilon

    @property
    def budget(self) -> PrivacyBudget:
        """The ``(epsilon, delta)`` guarantee of one invocation."""
        return PrivacyBudget(self.epsilon, self.delta)

    def randomize(self, value: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Return ``value + N(0, sigma^2)`` noise, elementwise."""
        rng = ensure_rng(rng)
        arr = np.asarray(value, dtype=float)
        return arr + rng.normal(loc=0.0, scale=self.sigma, size=arr.shape)


@dataclass(frozen=True)
class ExponentialMechanism:
    """Pure ε-DP selection from a finite candidate set (Definition 3).

    Given per-candidate scores ``u`` with sensitivity
    ``Δ = max_r max_{D~D'} |u(D,r) - u(D',r)|``, selects index ``r`` with
    probability proportional to ``exp(eps * u_r / (2 Δ))``.

    Two samplers are provided; they induce exactly the same distribution:

    * ``method="softmax"`` — normalise with :func:`scipy.special.logsumexp`
      and draw from the categorical distribution.
    * ``method="gumbel"`` — add i.i.d. ``Gumbel(2Δ/eps)`` noise to the
      scores and take the argmax (the Gumbel-max trick), which is the
      numerically friendliest form for very large candidate sets.
    """

    epsilon: float
    sensitivity: float
    method: str = "softmax"

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.sensitivity, "sensitivity")
        if self.method not in ("softmax", "gumbel"):
            raise ValueError(f"method must be 'softmax' or 'gumbel', got {self.method!r}")

    @property
    def budget(self) -> PrivacyBudget:
        """The ``(epsilon, 0)`` guarantee of one invocation."""
        return PrivacyBudget(self.epsilon, 0.0)

    def probabilities(self, scores: np.ndarray) -> np.ndarray:
        """Exact selection probabilities for the given score vector."""
        scores = np.asarray(scores, dtype=float)
        logits = (self.epsilon / (2.0 * self.sensitivity)) * scores
        return np.exp(logits - logsumexp(logits))

    def select(self, scores: np.ndarray, rng: SeedLike = None) -> int:
        """Sample a candidate index with exponential bias toward high scores."""
        rng = ensure_rng(rng)
        scores = np.asarray(scores, dtype=float)
        if scores.ndim != 1 or scores.size == 0:
            raise ValueError(f"scores must be a non-empty 1-D array, got shape {scores.shape}")
        # A non-finite score — or a finite one whose scaled logit
        # overflows — admits no exponential-mechanism distribution;
        # sampling anything (e.g. a deterministic argmax) would silently
        # void the privacy guarantee, on either sampler.
        with np.errstate(over="ignore"):
            logits = scores * (self.epsilon / (2.0 * self.sensitivity))
        if not np.all(np.isfinite(logits)):
            raise ValueError(
                "scores must be finite and their logits representable; "
                "got non-finite entries after scaling by eps/(2*sensitivity)")
        if self.method == "gumbel":
            noisy = logits + rng.gumbel(loc=0.0, scale=1.0, size=scores.shape)
            return int(np.argmax(noisy))
        probs = self.probabilities(scores)
        # Defensive renormalisation: with widely separated logits the
        # exponentiated probabilities can sum to slightly off 1.0 after
        # floating-point rounding, and rng.choice raises on any such
        # drift.  (Finite scores guarantee a strictly positive total:
        # the largest logit always contributes exp(0) = 1.)
        probs = probs / probs.sum()
        return int(rng.choice(scores.size, p=probs))


def report_noisy_max(scores: np.ndarray, epsilon: float, sensitivity: float,
                     rng: SeedLike = None,
                     exclude: Optional[np.ndarray] = None) -> int:
    """ε-DP argmax via Laplace noise (the Peeling per-round primitive).

    Adds ``Lap(2 * sensitivity / epsilon)`` noise to each score and
    returns the argmax over the non-excluded indices.  Matches the noise
    scale used inside Algorithm 4, where each of the ``s`` rounds runs at
    the stated per-round scale.

    Parameters
    ----------
    scores:
        Score vector (higher is better).  For Peeling these are ``|v_j|``.
    epsilon:
        Per-invocation privacy parameter.
    sensitivity:
        ℓ∞ sensitivity of the score vector.
    exclude:
        Optional boolean mask of indices that may not be returned.
    """
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    rng = ensure_rng(rng)
    scores = np.asarray(scores, dtype=float)
    noisy = scores + rng.laplace(scale=2.0 * sensitivity / epsilon, size=scores.shape)
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=bool)
        if exclude.all():
            raise ValueError("all indices are excluded")
        noisy = np.where(exclude, -np.inf, noisy)
    return int(np.argmax(noisy))
