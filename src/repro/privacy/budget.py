"""Privacy-budget value objects.

A :class:`PrivacyBudget` is an immutable ``(epsilon, delta)`` pair with
the arithmetic used throughout the paper: basic (sequential) composition
adds budgets, and the advanced composition theorem (Lemma 2 of the paper)
converts a target total budget into a per-iteration budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import check_non_negative, check_positive


@dataclass(frozen=True, order=False)
class PrivacyBudget:
    """An ``(epsilon, delta)`` differential-privacy guarantee.

    ``delta == 0`` denotes pure ε-DP.  Instances are immutable and
    hashable; arithmetic returns new instances.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_non_negative(self.delta, "delta")
        if self.delta >= 1:
            raise ValueError(f"delta must be < 1, got {self.delta}")

    @property
    def is_pure(self) -> bool:
        """``True`` when this is a pure ε-DP guarantee (``delta == 0``)."""
        return self.delta == 0.0

    def __add__(self, other: "PrivacyBudget") -> "PrivacyBudget":
        """Basic sequential composition: budgets add in both coordinates."""
        if not isinstance(other, PrivacyBudget):
            return NotImplemented
        return PrivacyBudget(self.epsilon + other.epsilon, self.delta + other.delta)

    def __mul__(self, k: int) -> "PrivacyBudget":
        """Basic composition of ``k`` copies of this budget."""
        if k < 1 or int(k) != k:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        return PrivacyBudget(self.epsilon * k, self.delta * k)

    __rmul__ = __mul__

    def split(self, k: int) -> "PrivacyBudget":
        """Per-step budget so that ``k`` basic-composed steps meet ``self``."""
        if k < 1 or int(k) != k:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        return PrivacyBudget(self.epsilon / k, self.delta / k)

    def covers(self, other: "PrivacyBudget", *, rtol: float = 1e-9) -> bool:
        """Whether ``self`` is at least as large as ``other`` in both coordinates.

        A small relative tolerance absorbs floating-point drift from
        repeated per-iteration splits.
        """
        eps_ok = other.epsilon <= self.epsilon * (1 + rtol)
        delta_ok = other.delta <= self.delta * (1 + rtol) + 1e-18
        return eps_ok and delta_ok

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_pure:
            return f"({self.epsilon:g})-DP"
        return f"({self.epsilon:g}, {self.delta:g})-DP"


def advanced_composition_step(total: PrivacyBudget, n_steps: int) -> PrivacyBudget:
    """Per-step budget under the advanced composition theorem (paper Lemma 2).

    To guarantee ``(epsilon, T*delta' + delta)``-DP over ``T`` adaptively
    chosen mechanisms it suffices that each is ``(epsilon', delta')``-DP with

    .. math:: \\epsilon' = \\frac{\\epsilon}{2\\sqrt{2 T \\ln(2/\\delta)}},
              \\qquad \\delta' = \\frac{\\delta}{T}.

    The returned per-step budget uses ``delta' = delta / (2T)`` so that the
    composed guarantee is exactly ``(epsilon, delta)`` (half the slack goes
    to the composition itself, half is spread over the steps), matching the
    paper's usage where each iteration runs at
    ``epsilon / (2 sqrt(2 T log(1/delta)))``.

    Parameters
    ----------
    total:
        The end-to-end ``(epsilon, delta)`` target.  ``delta`` must be
        strictly positive — advanced composition has no pure-DP form.
    n_steps:
        Number of adaptively composed mechanisms ``T >= 1``.
    """
    if total.delta <= 0:
        raise ValueError("advanced composition requires delta > 0")
    if n_steps < 1 or int(n_steps) != n_steps:
        raise ValueError(f"n_steps must be a positive integer, got {n_steps!r}")
    T = int(n_steps)
    eps_step = total.epsilon / (2.0 * math.sqrt(2.0 * T * math.log(2.0 / total.delta)))
    delta_step = total.delta / (2.0 * T)
    return PrivacyBudget(eps_step, delta_step)


def advanced_composition_total(step: PrivacyBudget, n_steps: int,
                               delta_slack: float) -> PrivacyBudget:
    """Total guarantee when composing ``n_steps`` copies of ``step``.

    The forward direction of Lemma 2 / Dwork-Roth Theorem 3.20: ``T``
    ``(eps', delta')``-DP mechanisms compose to

    .. math:: \\left(\\epsilon' \\sqrt{2 T \\ln(1/\\tilde\\delta)}
              + T \\epsilon' (e^{\\epsilon'} - 1),\\;
              T\\delta' + \\tilde\\delta\\right)\\text{-DP}

    for any slack ``delta_slack > 0``.
    """
    if n_steps < 1 or int(n_steps) != n_steps:
        raise ValueError(f"n_steps must be a positive integer, got {n_steps!r}")
    check_positive(delta_slack, "delta_slack")
    T = int(n_steps)
    eps = step.epsilon * math.sqrt(2.0 * T * math.log(1.0 / delta_slack))
    eps += T * step.epsilon * (math.exp(step.epsilon) - 1.0)
    return PrivacyBudget(eps, T * step.delta + delta_slack)
