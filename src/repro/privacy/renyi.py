"""Rényi differential privacy (RDP) accounting for Gaussian mechanisms.

The paper composes with the classical advanced composition theorem
(Lemma 2); modern DP-SGD implementations instead track Rényi divergence,
which composes *additively* and converts to (ε, δ)-DP at the end —
usually a substantially tighter bound for many Gaussian invocations.
This module provides that substrate so the DP-SGD baseline can be run
with state-of-practice accounting, and so the ablations can quantify how
much the paper-style composition leaves on the table.

Facts used (Mironov 2017):

* the Gaussian mechanism with noise multiplier ``sigma`` (noise std per
  unit ℓ2 sensitivity) satisfies ``(alpha, alpha / (2 sigma^2))``-RDP
  for every order ``alpha > 1``;
* RDP composes additively order-by-order;
* ``(alpha, rho)``-RDP implies ``(rho + log(1/delta)/(alpha - 1), delta)``-DP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from .._validation import check_positive
from .budget import PrivacyBudget

#: Default grid of Rényi orders, matching common DP-SGD libraries.
DEFAULT_ORDERS: Tuple[float, ...] = tuple(
    [1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0,
     16.0, 20.0, 24.0, 32.0, 48.0, 64.0, 128.0, 256.0]
)


def gaussian_rdp(noise_multiplier: float, alpha: float) -> float:
    """RDP of one Gaussian mechanism: ``alpha / (2 sigma^2)``."""
    check_positive(noise_multiplier, "noise_multiplier")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    return alpha / (2.0 * noise_multiplier**2)


def rdp_to_dp(rdp_values: Iterable[Tuple[float, float]],
              delta: float) -> PrivacyBudget:
    """Convert accumulated per-order RDP into the best ``(eps, delta)``.

    Parameters
    ----------
    rdp_values:
        Iterable of ``(alpha, rho_alpha)`` pairs.
    delta:
        Target failure probability.
    """
    check_positive(delta, "delta")
    if delta >= 1:
        raise ValueError(f"delta must be < 1, got {delta}")
    candidates = [rho + math.log(1.0 / delta) / (alpha - 1.0)
                  for alpha, rho in rdp_values]
    if not candidates:
        raise ValueError("rdp_values is empty")
    return PrivacyBudget(min(candidates), delta)


@dataclass
class RenyiAccountant:
    """Order-wise additive RDP ledger for Gaussian mechanisms.

    Examples
    --------
    >>> acc = RenyiAccountant()
    >>> for _ in range(100):
    ...     acc.record_gaussian(noise_multiplier=4.0)
    >>> budget = acc.to_dp(delta=1e-5)
    """

    orders: Tuple[float, ...] = DEFAULT_ORDERS
    _rdp: Dict[float, float] = field(default_factory=dict)
    n_recorded: int = 0

    def __post_init__(self) -> None:
        if any(alpha <= 1.0 for alpha in self.orders):
            raise ValueError("all Renyi orders must be > 1")
        for alpha in self.orders:
            self._rdp.setdefault(alpha, 0.0)

    def record_gaussian(self, noise_multiplier: float, count: int = 1) -> None:
        """Charge ``count`` Gaussian invocations at the given multiplier."""
        if count < 1 or int(count) != count:
            raise ValueError(f"count must be a positive integer, got {count!r}")
        for alpha in self.orders:
            self._rdp[alpha] += count * gaussian_rdp(noise_multiplier, alpha)
        self.n_recorded += int(count)

    def rdp_at(self, alpha: float) -> float:
        """Accumulated RDP at one order."""
        if alpha not in self._rdp:
            raise KeyError(f"order {alpha} is not tracked")
        return self._rdp[alpha]

    def to_dp(self, delta: float) -> PrivacyBudget:
        """Best ``(eps, delta)`` conversion over the tracked orders."""
        return rdp_to_dp(self._rdp.items(), delta)


def calibrate_noise_multiplier(target: PrivacyBudget, n_steps: int,
                               orders: Tuple[float, ...] = DEFAULT_ORDERS,
                               precision: float = 1e-3) -> float:
    """Smallest Gaussian multiplier meeting ``target`` over ``n_steps``.

    Bisects on ``sigma``; useful to compare against the advanced-
    composition calibration in :class:`~repro.baselines.dp_sgd.DPSGD`
    (RDP typically allows a noticeably smaller sigma).
    """
    if target.delta <= 0:
        raise ValueError("RDP conversion needs delta > 0")
    if n_steps < 1 or int(n_steps) != n_steps:
        raise ValueError(f"n_steps must be a positive integer, got {n_steps!r}")

    def epsilon_at(sigma: float) -> float:
        pairs = [(a, n_steps * gaussian_rdp(sigma, a)) for a in orders]
        return rdp_to_dp(pairs, target.delta).epsilon

    low, high = 1e-3, 1.0
    while epsilon_at(high) > target.epsilon:
        high *= 2.0
        if high > 1e6:
            raise RuntimeError("failed to bracket the noise multiplier")
    while high - low > precision:
        mid = 0.5 * (low + high)
        if epsilon_at(mid) > target.epsilon:
            low = mid
        else:
            high = mid
    return high
