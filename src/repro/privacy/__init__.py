"""Differential-privacy substrate: budgets, mechanisms, accounting.

This subpackage contains everything the paper's algorithms need to be
*private*: the ``(epsilon, delta)`` budget algebra (including the
advanced composition theorem, Lemma 2 of the paper), the Laplace /
Gaussian / Exponential mechanisms (Definitions 2 and 3), report-noisy-max,
and a ledger-style accountant that records what each run actually spent.
"""

from .accountant import LedgerEntry, PrivacyAccountant
from .budget import (
    PrivacyBudget,
    advanced_composition_step,
    advanced_composition_total,
)
from .renyi import (
    DEFAULT_ORDERS,
    RenyiAccountant,
    calibrate_noise_multiplier,
    gaussian_rdp,
    rdp_to_dp,
)
from .mechanisms import (
    ExponentialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    report_noisy_max,
)

__all__ = [
    "DEFAULT_ORDERS",
    "ExponentialMechanism",
    "GaussianMechanism",
    "LaplaceMechanism",
    "LedgerEntry",
    "RenyiAccountant",
    "PrivacyAccountant",
    "PrivacyBudget",
    "advanced_composition_step",
    "advanced_composition_total",
    "calibrate_noise_multiplier",
    "gaussian_rdp",
    "rdp_to_dp",
    "report_noisy_max",
]
