"""Robust-statistics substrate: Catoni estimation, shrinkage, baselines.

The heart of the paper's approach is that *bounded-influence* robust mean
estimation gives bounded sensitivity for free.  This subpackage provides
the smoothed Catoni–Giulini estimator (eqs. 1–5 and the appendix's
``Ĉ(a,b)``), the entry-wise shrinkage pre-processing of Algorithms 2–3,
non-private robust baselines, and private mean estimators assembled from
these pieces.
"""

from .baseline_means import coordinatewise, empirical_mean, median_of_means, trimmed_mean
from .catoni import (
    PHI_BOUND,
    PHI_KNEE,
    CatoniEstimator,
    correction_term,
    optimal_scale,
    phi,
    smoothed_phi,
    smoothed_phi_quadrature,
)
from .geometric_median import geometric_median_of_means, weiszfeld
from .private_mean import PrivateSparseMeanEstimator, private_mean_catoni_laplace
from .weak_moments import TruncatedMeanEstimator, optimal_truncation_threshold
from .truncation import (
    clip_l2,
    lasso_threshold,
    shrink,
    shrink_dataset,
    shrinkage_bias_bound,
    sparse_regression_threshold,
)

__all__ = [
    "CatoniEstimator",
    "PHI_BOUND",
    "PHI_KNEE",
    "PrivateSparseMeanEstimator",
    "TruncatedMeanEstimator",
    "clip_l2",
    "coordinatewise",
    "correction_term",
    "empirical_mean",
    "geometric_median_of_means",
    "lasso_threshold",
    "median_of_means",
    "optimal_scale",
    "optimal_truncation_threshold",
    "phi",
    "private_mean_catoni_laplace",
    "shrink",
    "shrink_dataset",
    "shrinkage_bias_bound",
    "smoothed_phi",
    "smoothed_phi_quadrature",
    "sparse_regression_threshold",
    "trimmed_mean",
    "weiszfeld",
]
