"""Mean estimation under weak ((1+v)-th) moment assumptions.

The paper's conclusion poses an open problem: "sometimes ... the data
may only has the 1+v-th moment with some v in (0, 1).  Due to this
weaker assumption, all the previous methods are failed.  Thus, how to
extend to this case?"  This module implements the natural extension the
robust-statistics literature suggests (Bubeck-Cesa-Bianchi-Lugosi
truncated mean): shrink each sample at a threshold ``B`` and average.

* Bias: ``E|X| 1{|X| > B} <= m_v / B^v`` when ``E|X|^{1+v} <= m_v``;
* Deviation: Bernstein on the bounded summands,
  ``O(B log(1/zeta) / n + sqrt(B^{1-v} m_v log(1/zeta) / n))``;
* Sensitivity: one sample moves the mean by at most ``2B/n`` — the same
  bounded-influence-equals-sensitivity principle as the Catoni engine,
  so it drops into the paper's private algorithms unchanged
  (:class:`~repro.core.heavy_tailed_dp_fw.HeavyTailedDPFW` accepts it
  via ``gradient_estimator="truncated"``).

Balancing bias against the privacy noise ``B/(n eps)`` gives the
threshold ``B* = (n eps m_v)^{1/(1+v)}`` exposed by
:func:`optimal_truncation_threshold`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive, check_probability
from .truncation import shrink


@dataclass(frozen=True)
class TruncatedMeanEstimator:
    """Shrink-then-average mean estimation with bounded influence.

    Implements the same interface as
    :class:`~repro.estimators.catoni.CatoniEstimator` (``estimate``,
    ``estimate_columns``, ``influence``, ``sensitivity``) so the two
    engines are interchangeable inside the private optimizers.

    Parameters
    ----------
    threshold:
        The shrinkage level ``B``; each sample contributes
        ``sign(x) min(|x|, B)``.
    """

    threshold: float

    def __post_init__(self) -> None:
        check_positive(self.threshold, "threshold")

    def influence(self, samples: np.ndarray) -> np.ndarray:
        """Per-sample contribution, bounded by ``threshold`` in magnitude."""
        return shrink(np.asarray(samples, dtype=float), self.threshold)

    def estimate(self, samples: np.ndarray) -> float:
        """Truncated mean of a 1-D sample."""
        x = np.asarray(samples, dtype=float)
        if x.ndim != 1 or x.size == 0:
            raise ValueError(f"samples must be a non-empty 1-D array, got shape {x.shape}")
        return float(np.mean(self.influence(x)))

    def estimate_columns(self, samples: np.ndarray) -> np.ndarray:
        """Column-wise truncated means of a 2-D sample."""
        x = np.asarray(samples, dtype=float)
        if x.ndim != 2 or x.size == 0:
            raise ValueError(f"samples must be a non-empty 2-D array, got shape {x.shape}")
        return np.mean(self.influence(x), axis=0)

    def sensitivity(self, n_samples: int) -> float:
        """ℓ∞ sensitivity to one sample change: ``2 B / n``."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        return 2.0 * self.threshold / n_samples

    def bias_bound(self, moment_order: float, moment_bound: float) -> float:
        """Truncation bias ``m_v / B^v`` for ``E|X|^{1+v} <= m_v``.

        ``moment_order`` is ``1 + v`` with ``v in (0, 1]``.
        """
        v = _check_order(moment_order)
        check_positive(moment_bound, "moment_bound")
        return moment_bound / self.threshold**v

    def error_bound(self, n_samples: int, moment_order: float,
                    moment_bound: float, failure_probability: float) -> float:
        """High-probability deviation + bias bound of the truncated mean."""
        v = _check_order(moment_order)
        check_positive(moment_bound, "moment_bound")
        zeta = check_probability(failure_probability, "failure_probability",
                                 allow_zero=False, allow_one=False)
        log_term = math.log(2.0 / zeta)
        bias = self.bias_bound(moment_order, moment_bound)
        # Var(shrunk X) <= E min(X^2, B^2) <= B^{1-v} m_v.
        variance = self.threshold ** (1.0 - v) * moment_bound
        deviation = (self.threshold * log_term / n_samples
                     + math.sqrt(2.0 * variance * log_term / n_samples))
        return bias + deviation


def _check_order(moment_order: float) -> float:
    """Validate ``moment_order = 1 + v`` and return ``v``."""
    v = float(moment_order) - 1.0
    if not 0.0 < v <= 1.0:
        raise ValueError(
            f"moment_order must lie in (1, 2], got {moment_order!r}"
        )
    return v


def optimal_truncation_threshold(n_samples: int, epsilon: float,
                                 moment_order: float,
                                 moment_bound: float = 1.0) -> float:
    """Threshold balancing truncation bias against privacy noise.

    Bias ``m_v / B^v`` equals the per-coordinate privacy noise scale
    ``B / (n eps)`` at ``B* = (n eps m_v)^{1/(1+v)}`` — the weak-moment
    analogue of the paper's ``K`` and ``s`` schedules.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    check_positive(epsilon, "epsilon")
    v = _check_order(moment_order)
    check_positive(moment_bound, "moment_bound")
    return (n_samples * epsilon * moment_bound) ** (1.0 / (1.0 + v))


from ..registry import ESTIMATORS

ESTIMATORS.register("truncated", TruncatedMeanEstimator)
