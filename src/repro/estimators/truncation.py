"""Entry-wise data shrinkage for heavy-tailed design matrices.

Algorithms 2 and 3 of the paper pre-process the raw samples by the
shrinkage operator of Fan, Wang and Zhu (2016):

.. math:: \\tilde x_{ij} = \\mathrm{sign}(x_{ij})\\,\\min(|x_{ij}|, K),
          \\qquad \\tilde y_i = \\mathrm{sign}(y_i)\\,\\min(|y_i|, K).

After shrinkage every entry is bounded by ``K``, so the squared loss is
ℓ1-Lipschitz with constant ``O(K^2)`` and the private Frank–Wolfe / IHT
machinery for regular data applies.  The threshold schedules of
Theorems 5 and 7 — ``K = (n eps)^{1/4} / T^{1/8}`` for LASSO and
``K = (n eps / (s T))^{1/4}`` for sparse regression — live here too so
the core algorithms and the ablation benches share one implementation.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .._validation import check_positive, check_positive_int


def shrink(values: np.ndarray, threshold: float) -> np.ndarray:
    """Entry-wise shrinkage ``sign(v) * min(|v|, K)``.

    Unlike zeroing-style "truncation", shrinkage keeps the sign and caps
    the magnitude, which is what preserves enough signal under bounded
    fourth moments (paper Assumption 3 / Lemma 8).
    """
    check_positive(threshold, "threshold")
    v = np.asarray(values, dtype=float)
    return np.sign(v) * np.minimum(np.abs(v), threshold)


def shrink_dataset(features: np.ndarray, labels: np.ndarray,
                   threshold: float) -> Tuple[np.ndarray, np.ndarray]:
    """Shrink both the design matrix and the responses at threshold ``K``."""
    return shrink(features, threshold), shrink(labels, threshold)


def lasso_threshold(n_samples: int, epsilon: float, n_iterations: int) -> float:
    """Theorem 5 schedule for Algorithm 2: ``K = (n eps)^{1/4} / T^{1/8}``."""
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive_int(n_iterations, "n_iterations")
    return (n_samples * epsilon) ** 0.25 / n_iterations ** 0.125


def sparse_regression_threshold(n_samples: int, epsilon: float,
                                sparsity: int, n_iterations: int) -> float:
    """Theorem 7 schedule for Algorithm 3: ``K = (n eps / (s T))^{1/4}``.

    The different exponent versus :func:`lasso_threshold` reflects the
    different bias/variance/noise trade-off the two proofs optimise
    (Remark 3 of the paper).
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive_int(sparsity, "sparsity")
    check_positive_int(n_iterations, "n_iterations")
    return (n_samples * epsilon / (sparsity * n_iterations)) ** 0.25


def shrinkage_bias_bound(threshold: float, fourth_moment: float) -> float:
    """Bound on the covariance distortion of shrinkage: ``O(M / K^2)``.

    Equation (36) of the paper: for entries with bounded fourth moment
    ``E (x_j x_k)^2 <= M``, the shrunken second-moment matrix deviates
    entry-wise from the true one by at most a constant times ``M / K^2``.
    Exposed so tests and the threshold ablation can compare the measured
    distortion against the analytical rate.
    """
    check_positive(threshold, "threshold")
    check_positive(fourth_moment, "fourth_moment")
    return fourth_moment / threshold**2


def clip_l2(rows: np.ndarray, radius: float) -> np.ndarray:
    """Per-row ℓ2 clipping ``v * min(1, radius / ||v||_2)``.

    This is the *gradient clipping* used by the DP-SGD baseline (Abadi et
    al.), included here for contrast with shrinkage: clipping bounds the
    whole-vector norm, shrinkage bounds each entry.
    """
    check_positive(radius, "radius")
    arr = np.asarray(rows, dtype=float)
    if arr.ndim == 1:
        norm = float(np.linalg.norm(arr))
        if norm <= radius or norm == 0.0:
            return arr.copy()
        return arr * (radius / norm)
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    scales = np.minimum(1.0, radius / np.maximum(norms, 1e-300))
    return arr * scales
