"""Catoni–Giulini robust mean estimation with multiplicative-noise smoothing.

This module implements the robust one-dimensional mean estimator of the
paper's equations (1)–(5), which is the statistical engine behind
Algorithms 1 and 5:

1. **Scaling and truncation** — each sample is divided by a scale ``s``
   and passed through the bounded influence function ``phi`` (eq. 2);
2. **Noise multiplication** — each sample is multiplied by ``1 + eta``
   with ``eta ~ N(0, 1/beta)``;
3. **Noise smoothing** — the multiplicative noise is integrated out in
   closed form (eq. 5), yielding the smoothed influence

   .. math:: E_\\eta\\,\\varphi(a + b\\sqrt{\\beta}\\,\\eta)
             = a\\Big(1 - \\frac{b^2}{2}\\Big) - \\frac{a^3}{6} + \\hat C(a, b),

   with ``a = x/s`` and ``b = |x| / (s sqrt(beta))`` and the correction
   term ``Ĉ(a, b)`` given explicitly in the paper's appendix (T1..T5).

The decisive property for privacy is that ``|phi| <= 2*sqrt(2)/3``
pointwise, hence the smoothed influence obeys the same bound and the
estimator's value moves by at most ``4*sqrt(2)*s / (3*n)`` when one
sample changes (the sensitivity used by the exponential mechanism in
Algorithm 1 and by Peeling in Algorithm 5).  We additionally *clip* the
computed influence to the theoretical bound so the sensitivity holds
numerically, not just analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from .._validation import check_positive

#: Pointwise bound on the influence function: ``|phi(u)| <= PHI_BOUND``.
PHI_BOUND = 2.0 * math.sqrt(2.0) / 3.0

#: The truncation knee of ``phi``: ``phi`` is the cubic ``u - u^3/6``
#: on ``[-sqrt(2), sqrt(2)]`` and saturates outside.
PHI_KNEE = math.sqrt(2.0)

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def phi(u: np.ndarray) -> np.ndarray:
    """The Catoni soft-truncation influence function of eq. (2).

    .. math::
        \\varphi(u) = \\begin{cases}
            u - u^3/6 & -\\sqrt2 \\le u \\le \\sqrt2 \\\\
            2\\sqrt2/3 & u > \\sqrt2 \\\\
            -2\\sqrt2/3 & u < -\\sqrt2
        \\end{cases}

    Vectorised; returns an array of the same shape as ``u``.
    """
    u = np.asarray(u, dtype=float)
    core = u - u**3 / 6.0
    return np.where(u > PHI_KNEE, PHI_BOUND, np.where(u < -PHI_KNEE, -PHI_BOUND, core))


def correction_term(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The closed-form correction ``Ĉ(a, b)`` from the paper's appendix.

    With ``V∓ = (sqrt(2) ∓ a)/b``, ``F∓ = Phi(-V∓)`` and
    ``E∓ = exp(-V∓^2/2)`` (``Phi`` the standard normal CDF), the
    correction is the sum ``T1 + ... + T5`` reproduced verbatim from the
    appendix.  It accounts for the probability mass of the smoothing
    noise that pushes the argument of ``phi`` past the saturation knees.

    ``b`` must be strictly positive; callers handle the ``b -> 0``
    degenerate case (no smoothing noise) by falling back to ``phi(a)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    v_minus = (PHI_KNEE - a) / b
    v_plus = (PHI_KNEE + a) / b
    f_minus = norm.cdf(-v_minus)
    f_plus = norm.cdf(-v_plus)
    e_minus = np.exp(-0.5 * v_minus**2)
    e_plus = np.exp(-0.5 * v_plus**2)

    t1 = PHI_BOUND * (f_minus - f_plus)
    t2 = -(a - a**3 / 6.0) * (f_minus + f_plus)
    t3 = b / _SQRT_2PI * (1.0 - a**2 / 2.0) * (e_plus - e_minus)
    t4 = (a * b**2 / 2.0) * (
        f_plus + f_minus + (v_plus * e_plus + v_minus * e_minus) / _SQRT_2PI
    )
    t5 = b**3 / (6.0 * _SQRT_2PI) * ((2.0 + v_minus**2) * e_minus - (2.0 + v_plus**2) * e_plus)
    return t1 + t2 + t3 + t4 + t5


def smoothed_phi(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Closed form of ``E_xi[phi(a + b*xi)]`` for ``xi ~ N(0, 1)`` (eq. 5).

    Parameters
    ----------
    a:
        Location ``x / s`` of each (rescaled) sample.
    b:
        Noise amplitude ``|x| / (s * sqrt(beta))``; must be ``>= 0``.
        Entries with ``b == 0`` fall back to the un-smoothed ``phi(a)``.

    Returns
    -------
    numpy.ndarray
        The smoothed influence, clipped into ``[-PHI_BOUND, PHI_BOUND]``
        (the clip removes only floating-point overshoot — the exact
        expectation already satisfies the bound because ``phi`` does).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if np.any(b < 0):
        raise ValueError("b must be non-negative")
    a, b = np.broadcast_arrays(a, b)
    out = np.empty_like(a)

    degenerate = b < 1e-12
    if np.any(degenerate):
        out[degenerate] = phi(a[degenerate])
    active = ~degenerate
    if np.any(active):
        aa = a[active]
        bb = b[active]
        main = aa * (1.0 - bb**2 / 2.0) - aa**3 / 6.0
        out[active] = main + correction_term(aa, bb)
    return np.clip(out, -PHI_BOUND, PHI_BOUND)


def smoothed_phi_quadrature(a: float, b: float, n_points: int = 20001,
                            half_width: float = 12.0) -> float:
    """Numerical reference for :func:`smoothed_phi` via trapezoid quadrature.

    Exists for testing: the property-based suite checks the closed form
    against this quadrature on random ``(a, b)``.
    """
    if b < 1e-12:
        return float(phi(np.asarray(a)))
    xi = np.linspace(-half_width, half_width, n_points)
    weights = np.exp(-0.5 * xi**2) / _SQRT_2PI
    values = phi(a + b * xi)
    return float(np.trapezoid(values * weights, xi))


@dataclass(frozen=True)
class CatoniEstimator:
    """The three-step robust mean estimator of eqs. (1)–(5).

    Parameters
    ----------
    scale:
        The truncation scale ``s > 0``.  Larger scales truncate less
        (lower bias, higher sensitivity); the theorems pick ``s`` to
        balance the estimator's bias/variance against the DP noise.
    beta:
        Inverse variance of the multiplicative smoothing noise
        ``eta ~ N(0, 1/beta)``.  The paper always sets ``beta = O(1)``;
        the default matches the theory sections.
    """

    scale: float
    beta: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.scale, "scale")
        check_positive(self.beta, "beta")

    def influence(self, samples: np.ndarray) -> np.ndarray:
        """Per-sample smoothed influence ``s * E_eta phi((x + eta x)/s)``.

        Each returned entry lies in ``[-s*PHI_BOUND, s*PHI_BOUND]``, so
        replacing one sample moves the *mean* of the influences by at most
        :meth:`sensitivity` — this is the quantity private algorithms add
        noise to.
        """
        x = np.asarray(samples, dtype=float)
        a = x / self.scale
        b = np.abs(x) / (self.scale * math.sqrt(self.beta))
        return self.scale * smoothed_phi(a, b)

    def estimate(self, samples: np.ndarray) -> float:
        """Robust mean estimate ``(s/n) * sum_i E_eta phi((x_i + eta x_i)/s)``."""
        x = np.asarray(samples, dtype=float)
        if x.ndim != 1 or x.size == 0:
            raise ValueError(f"samples must be a non-empty 1-D array, got shape {x.shape}")
        return float(np.mean(self.influence(x)))

    def estimate_columns(self, samples: np.ndarray) -> np.ndarray:
        """Apply the estimator independently to each column of a matrix.

        This is the coordinate-wise use in Algorithms 1 and 5, where the
        columns are the per-sample partial derivatives of the loss.
        """
        x = np.asarray(samples, dtype=float)
        if x.ndim != 2 or x.size == 0:
            raise ValueError(f"samples must be a non-empty 2-D array, got shape {x.shape}")
        return np.mean(self.influence(x), axis=0)

    def sensitivity(self, n_samples: int) -> float:
        """ℓ∞ sensitivity of the estimate to one sample change: ``4√2·s/(3n)``."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        return 4.0 * math.sqrt(2.0) * self.scale / (3.0 * n_samples)

    def error_bound(self, n_samples: int, second_moment: float,
                    failure_probability: float) -> float:
        """High-probability deviation bound of Lemma 4 of the paper.

        With probability at least ``1 - zeta``,

        .. math:: |\\hat x(s,\\beta) - E x| \\le
                  \\frac{\\tau}{2s}\\Big(\\frac1\\beta + 1\\Big)
                  + \\frac{s}{n}\\Big(\\frac\\beta2 + \\log\\frac2\\zeta\\Big).
        """
        check_positive(second_moment, "second_moment")
        zeta = float(failure_probability)
        if not 0 < zeta < 1:
            raise ValueError(f"failure_probability must be in (0,1), got {zeta}")
        bias = second_moment / (2.0 * self.scale) * (1.0 / self.beta + 1.0)
        deviation = self.scale / n_samples * (self.beta / 2.0 + math.log(2.0 / zeta))
        return bias + deviation

    def noisy_estimate(self, samples: np.ndarray, noise_draws: np.ndarray) -> float:
        """Monte-Carlo (un-smoothed) estimator of eq. (3), mainly for tests.

        ``noise_draws`` are explicit multiplicative noises ``eta_i``; the
        smoothed estimator is the expectation of this quantity over
        ``eta_i ~ N(0, 1/beta)``.
        """
        x = np.asarray(samples, dtype=float)
        eta = np.asarray(noise_draws, dtype=float)
        if x.shape != eta.shape:
            raise ValueError("samples and noise_draws must have matching shapes")
        return float(self.scale * np.mean(phi((x + eta * x) / self.scale)))


def optimal_scale(n_samples: int, second_moment: float,
                  failure_probability: float, beta: float = 1.0) -> float:
    """Scale minimising the Lemma 4 bound: ``s* = sqrt(n tau (1+1/beta) / (beta + 2 log(2/zeta)))``.

    Setting the derivative of the bound in :meth:`CatoniEstimator.error_bound`
    to zero balances the bias ``tau(1+1/beta)/(2s)`` against the deviation
    ``s(beta/2 + log(2/zeta))/n``.
    """
    check_positive(second_moment, "second_moment")
    check_positive(beta, "beta")
    zeta = float(failure_probability)
    if not 0 < zeta < 1:
        raise ValueError(f"failure_probability must be in (0,1), got {zeta}")
    numerator = n_samples * second_moment * (1.0 + 1.0 / beta)
    denominator = beta + 2.0 * math.log(2.0 / zeta)
    return math.sqrt(numerator / denominator)


from ..registry import ESTIMATORS

ESTIMATORS.register("catoni", CatoniEstimator)
