"""Non-private robust mean baselines.

These estimators are *comparators* for the Catoni machinery: the tests
and ablations use them to demonstrate why plain averaging fails on
heavy-tailed data and to sanity-check the robust estimates.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import check_positive_int, check_probability, check_vector
from ..rng import SeedLike, ensure_rng


def empirical_mean(samples: np.ndarray) -> float:
    """Plain sample mean — the estimator heavy tails break."""
    x = check_vector(samples, "samples")
    if x.size == 0:
        raise ValueError("samples must be non-empty")
    return float(np.mean(x))


def trimmed_mean(samples: np.ndarray, trim_fraction: float = 0.1) -> float:
    """Symmetrically trimmed mean.

    Discards the ``trim_fraction`` smallest and largest samples before
    averaging.  ``trim_fraction`` must lie in ``[0, 0.5)``.
    """
    x = check_vector(samples, "samples")
    frac = check_probability(trim_fraction, "trim_fraction")
    if frac >= 0.5:
        raise ValueError(f"trim_fraction must be < 0.5, got {frac}")
    if x.size == 0:
        raise ValueError("samples must be non-empty")
    k = int(math.floor(frac * x.size))
    if k == 0:
        return float(np.mean(x))
    ordered = np.sort(x)
    return float(np.mean(ordered[k:x.size - k]))


def median_of_means(samples: np.ndarray, n_blocks: int = 8,
                    rng: SeedLike = None) -> float:
    """Median-of-means estimator.

    Randomly partitions the samples into ``n_blocks`` near-equal blocks,
    averages each block and returns the median of the block means.  This
    is the classical sub-Gaussian-rate estimator for heavy-tailed data
    (Minsker 2015 and references in the paper's related work).
    """
    x = check_vector(samples, "samples")
    n_blocks = check_positive_int(n_blocks, "n_blocks")
    if x.size == 0:
        raise ValueError("samples must be non-empty")
    n_blocks = min(n_blocks, x.size)
    rng = ensure_rng(rng)
    permuted = x[rng.permutation(x.size)]
    blocks = np.array_split(permuted, n_blocks)
    means = np.array([np.mean(block) for block in blocks])
    return float(np.median(means))


def _columns_empirical_mean(x: np.ndarray) -> np.ndarray:
    """All-column :func:`empirical_mean` in one array pass, bit-identical.

    ``np.mean`` reduces a contiguous row with the same pairwise
    summation it applies to the matching 1-D column slice, so
    transposing to row-major and reducing along the last axis returns
    exactly the floats of the per-column loop.
    """
    return np.mean(np.ascontiguousarray(x.T), axis=1)


def _columns_trimmed_mean(x: np.ndarray,
                          trim_fraction: float = 0.1) -> np.ndarray:
    """All-column :func:`trimmed_mean` in one array pass, bit-identical.

    Same validation, same trim count, same floats: one row-wise sort
    replaces the per-column sorts, and the middle-slice mean reduces
    every row with the column loop's summation order.
    """
    frac = check_probability(trim_fraction, "trim_fraction")
    if frac >= 0.5:
        raise ValueError(f"trim_fraction must be < 0.5, got {frac}")
    n = x.shape[0]
    k = int(math.floor(frac * n))
    rows = np.ascontiguousarray(x.T)
    if k == 0:
        return np.mean(rows, axis=1)
    ordered = np.sort(rows, axis=1)
    return np.mean(ordered[:, k:n - k], axis=1)


def coordinatewise(estimator, samples: np.ndarray, **kwargs) -> np.ndarray:
    """Apply a scalar mean estimator independently to each column.

    Parameters
    ----------
    estimator:
        Any callable taking a 1-D array (plus ``kwargs``) and returning a
        float, e.g. :func:`trimmed_mean`.
    samples:
        2-D array; columns are coordinates.

    For the estimators with a registered all-column fast path
    (:func:`empirical_mean`, :func:`trimmed_mean`) the per-column
    Python loop is replaced by a single array-level pass with
    bit-identical output.  Inputs the fast path cannot reproduce
    faithfully — empty arrays, non-finite entries — fall back to the
    loop so per-column validation errors surface unchanged.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"samples must be 2-D, got shape {x.shape}")
    fast = _COLUMNWISE_FAST.get(estimator)
    if fast is not None and x.size > 0 and np.all(np.isfinite(x)):
        return fast(x, **kwargs)
    return np.array([estimator(x[:, j], **kwargs) for j in range(x.shape[1])])


#: Scalar estimators with an all-column vectorized equivalent; used by
#: :func:`coordinatewise`.  Every entry must be bit-identical to its
#: per-column loop on finite, non-empty input.
_COLUMNWISE_FAST = {
    empirical_mean: _columns_empirical_mean,
    trimmed_mean: _columns_trimmed_mean,
}


from ..registry import ESTIMATORS

ESTIMATORS.register("empirical_mean", empirical_mean)
ESTIMATORS.register("trimmed_mean", trimmed_mean)
ESTIMATORS.register("median_of_means", median_of_means)
