"""Private heavy-tailed mean estimation.

The lower bound of Theorem 9 is stated for *sparse mean estimation with
bounded coordinate second moments*; this module provides the matching
upper-bound constructions assembled from the library's own pieces:

* :func:`private_mean_catoni_laplace` — dense d-dimensional private mean:
  coordinate-wise Catoni influence + Laplace noise calibrated to the
  estimator's ℓ1 sensitivity (ε-DP).  This is the "[57]-style" estimator
  the paper contrasts with (its error is poly(d), as Remark 1 notes).
* :class:`PrivateSparseMeanEstimator` — the high-dimensional route: the
  Catoni estimate followed by Peeling-based private support selection,
  mirroring how Algorithm 5 treats its gradients.  Error scales with
  ``s* log d`` instead of ``d``, matching the Theorem 9 rate up to logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_matrix, check_positive, check_positive_int
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..privacy.mechanisms import LaplaceMechanism
from ..rng import SeedLike, ensure_rng
from .catoni import CatoniEstimator, optimal_scale


def private_mean_catoni_laplace(samples: np.ndarray, epsilon: float,
                                scale: Optional[float] = None,
                                beta: float = 1.0,
                                second_moment: float = 1.0,
                                failure_probability: float = 0.05,
                                rng: SeedLike = None,
                                accountant: Optional[PrivacyAccountant] = None,
                                ) -> np.ndarray:
    """ε-DP dense mean estimate: coordinate-wise Catoni + Laplace noise.

    The robust estimate of each coordinate has per-sample influence
    bounded by ``2*sqrt(2)*s/3``, so the d-dimensional estimate has ℓ1
    sensitivity ``d * 4*sqrt(2)*s/(3n)``; Laplace noise at that scale
    yields pure ε-DP.  The resulting error grows linearly in ``d`` —
    exactly the dimension dependence the paper's high-dimensional
    algorithms avoid.

    Parameters
    ----------
    samples:
        ``(n, d)`` data matrix.
    epsilon:
        Privacy parameter.
    scale:
        Catoni scale ``s``; defaults to the Lemma-4-optimal scale for the
        given ``second_moment`` and ``failure_probability``.
    """
    x = check_matrix(samples, "samples")
    check_positive(epsilon, "epsilon")
    n, d = x.shape
    if scale is None:
        scale = optimal_scale(n, second_moment, failure_probability, beta)
    catoni = CatoniEstimator(scale=scale, beta=beta)
    estimate = catoni.estimate_columns(x)
    sensitivity_l1 = d * catoni.sensitivity(n)
    mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity_l1)
    if accountant is not None:
        accountant.spend(mechanism.budget, "laplace", note="dense private mean")
    return mechanism.randomize(estimate, rng=ensure_rng(rng))


@dataclass(frozen=True)
class PrivateSparseMeanEstimator:
    """(ε, δ)-DP sparse mean estimation via Catoni + Peeling.

    This is the estimator implied by the paper's Section 5.2 discussion:
    treat the mean as the gradient of ``L(w) = E||x - w||^2 / 2`` at
    ``w = 0``, estimate it robustly per coordinate, then privately select
    and release the top-``s`` coordinates with Algorithm 4 (Peeling).

    Parameters
    ----------
    sparsity:
        Number of coordinates to select and release (``s >= s*``).
    epsilon, delta:
        Total privacy budget of one :meth:`estimate` call.
    scale:
        Catoni scale; ``None`` selects the Lemma-4-optimal scale.
    beta:
        Smoothing-noise inverse variance (paper uses ``O(1)``).
    second_moment:
        Known bound ``tau`` with ``E x_j^2 <= tau``.
    """

    sparsity: int
    epsilon: float
    delta: float
    scale: Optional[float] = None
    beta: float = 1.0
    second_moment: float = 1.0
    failure_probability: float = 0.05

    def __post_init__(self) -> None:
        check_positive_int(self.sparsity, "sparsity")
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")

    def estimate(self, samples: np.ndarray, rng: SeedLike = None,
                 accountant: Optional[PrivacyAccountant] = None) -> np.ndarray:
        """Return an ``s``-sparse private estimate of ``E x``."""
        from ..core.peeling import peeling  # local import to avoid a cycle

        x = check_matrix(samples, "samples")
        n, _ = x.shape
        scale = self.scale
        if scale is None:
            scale = optimal_scale(n, self.second_moment,
                                  self.failure_probability, self.beta)
        catoni = CatoniEstimator(scale=scale, beta=self.beta)
        robust = catoni.estimate_columns(x)
        sensitivity = catoni.sensitivity(n)
        result = peeling(robust, sparsity=self.sparsity, epsilon=self.epsilon,
                         delta=self.delta, noise_scale=sensitivity,
                         rng=ensure_rng(rng))
        if accountant is not None:
            accountant.spend(PrivacyBudget(self.epsilon, self.delta), "peeling",
                             note="sparse private mean")
        return result.vector
