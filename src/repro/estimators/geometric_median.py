"""Geometric median-of-means for vector-valued mean estimation (Minsker 2015).

The related-work robust baseline the paper cites ([44]): split the
sample into blocks, average each block, and return the *geometric
median* of the block means

.. math:: \\hat\\mu = \\arg\\min_z \\sum_k \\|z - \\bar x_k\\|_2,

computed by Weiszfeld's algorithm.  Unlike the coordinate-wise
estimators, its guarantee is stated in ℓ2 norm and it is equivariant
under rotations; the tests contrast it with the Catoni engine on
contaminated vector data.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_matrix, check_positive, check_positive_int
from ..rng import SeedLike, ensure_rng


def weiszfeld(points: np.ndarray, max_iterations: int = 200,
              tol: float = 1e-9) -> np.ndarray:
    """Geometric median of a point cloud via Weiszfeld iteration.

    Parameters
    ----------
    points:
        ``(k, d)`` array of points.
    max_iterations, tol:
        Stop after ``max_iterations`` or when the iterate moves less
        than ``tol`` in ℓ2.

    Notes
    -----
    Uses the standard ε-regularised update so the iteration is
    well-defined when the iterate lands on a data point.
    """
    pts = check_matrix(points, "points")
    check_positive_int(max_iterations, "max_iterations")
    check_positive(tol, "tol")
    z = pts.mean(axis=0)
    for _ in range(max_iterations):
        distances = np.linalg.norm(pts - z, axis=1)
        distances = np.maximum(distances, 1e-12)
        weights = 1.0 / distances
        new_z = weights @ pts / weights.sum()
        if np.linalg.norm(new_z - z) < tol:
            return new_z
        z = new_z
    return z


def geometric_median_of_means(samples: np.ndarray, n_blocks: int = 8,
                              rng: SeedLike = None,
                              max_iterations: int = 200) -> np.ndarray:
    """Minsker's estimator: geometric median of random block means.

    Parameters
    ----------
    samples:
        ``(n, d)`` data matrix.
    n_blocks:
        Number of blocks ``k``; the estimator tolerates just under
        ``k/2`` arbitrarily corrupted blocks.
    """
    x = check_matrix(samples, "samples")
    check_positive_int(n_blocks, "n_blocks")
    n = x.shape[0]
    if n == 0:
        raise ValueError("samples must be non-empty")
    k = min(n_blocks, n)
    rng = ensure_rng(rng)
    permuted = x[rng.permutation(n)]
    block_means = np.stack([block.mean(axis=0)
                            for block in np.array_split(permuted, k)])
    if k == 1:
        return block_means[0]
    return weiszfeld(block_means, max_iterations=max_iterations)


from ..registry import ESTIMATORS

ESTIMATORS.register("geometric_median_of_means", geometric_median_of_means)
